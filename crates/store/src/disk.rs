//! The out-of-core persistent store: a [`ShardedStore`] whose shards
//! window block-sized reads through a shared, byte-budgeted LRU cache.
//!
//! [`open_store`] turns a directory written by `sp2b save` (see
//! [`crate::segment`] for the format) back into a queryable store. The
//! open path reads the checksummed segment root, the shared dictionary
//! and each shard's block index — O(header + dictionary + index), never
//! O(parse) — and validates each shard file's existence and exact size.
//! Triple payload stays on disk: a scan binary-searches the block
//! index's first keys to the blocks its key range covers, then pulls
//! those blocks one at a time through the [`BlockCache`] every shard of
//! one store shares. Each block is checksum-verified as it is read and
//! decoded once while cached, so resident memory is O(cache budget +
//! blocks currently being iterated) — a document larger than RAM serves
//! fine, and a skewed workload's hot blocks stay resident while cold
//! ones never displace them for long.
//!
//! Because the shards sit behind the ordinary [`ShardedStore`] (same
//! shared dictionary, same routing, same chunk concatenation), the
//! morsel exchange, bound-key routing and every equivalence guarantee
//! of the in-memory stores apply unchanged; [`ScanChunk::Blocks`]
//! handles carry block ranges instead of borrowed slices, so an
//! eviction can never invalidate a worker's chunk.

use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sp2b_rdf::Graph;

use crate::dictionary::{Dictionary, Id, IdTriple};
use crate::segment::{
    self, read_block_index, read_header, read_stats, run_key, shard_file_name, write_segments_with,
    BlockIndex, Checksum, SegmentError, SegmentStats, ShardMeta, DEFAULT_BLOCK_TRIPLES, RUN_ORDERS,
    TRIPLE_BYTES,
};
use crate::shard::{ShardBy, ShardedStore};
use crate::stats::StoreStats;
use crate::traits::{
    debug_assert_chunks_cover, matches, split_ranges, BlockSource, CacheStats, Pattern, ScanChunk,
    TripleStore,
};

/// The default cache budget is this fraction of the document's total
/// run payload (all shards, all three runs), floored at
/// [`MIN_CACHE_BYTES`] — enough to keep a skewed workload's hot blocks
/// resident without approaching a whole-document footprint.
pub const DEFAULT_CACHE_FRACTION: u64 = 4;

/// Floor of the default cache budget: small documents cache whole.
pub const MIN_CACHE_BYTES: u64 = 1 << 20;

/// Fixed per-entry bookkeeping charged against the budget on top of a
/// block's decoded payload bytes.
const SLOT_OVERHEAD: u64 = 64;

/// Saves a graph as a segment directory: terms are interned in document
/// order (ids identical to an in-memory load of the same document),
/// triples are routed by `shard_by` into `shards` buckets, and
/// [`write_segments_with`] lays the block-cut runs out on disk.
pub fn save_graph(
    dir: &Path,
    graph: &Graph,
    shards: usize,
    shard_by: ShardBy,
) -> Result<SegmentStats, SegmentError> {
    save_graph_with(dir, graph, shards, shard_by, DEFAULT_BLOCK_TRIPLES)
}

/// [`save_graph`] with an explicit block size (tests use tiny blocks to
/// exercise boundary handling; real saves keep the default).
pub fn save_graph_with(
    dir: &Path,
    graph: &Graph,
    shards: usize,
    shard_by: ShardBy,
    block_triples: u32,
) -> Result<SegmentStats, SegmentError> {
    let n = shards.max(1);
    let mut dict = Dictionary::new();
    let mut buckets: Vec<Vec<IdTriple>> = (0..n).map(|_| Vec::new()).collect();
    for t in graph.iter() {
        let enc = dict.encode_triple(t);
        buckets[shard_by.shard_of(&enc, n)].push(enc);
    }
    write_segments_with(dir, &dict, shard_by, buckets, block_triples)
}

/// Opens a segment directory as a [`ShardedStore`] of block-windowed
/// disk shards with the default cache budget. See [`open_store_with`].
pub fn open_store(dir: &Path) -> Result<ShardedStore, SegmentError> {
    open_store_with(dir, None)
}

/// Opens a segment directory as a [`ShardedStore`] of block-windowed
/// disk shards sharing one [`BlockCache`] of `cache_bytes` (default: a
/// quarter of the document's run payload, at least 1 MiB).
///
/// Cost: the segment root, the dictionary, each shard's block index,
/// and one `stat` per shard file (existence + exact expected size, so
/// truncation surfaces here as a clean error rather than later as a
/// failed read). No triple payload is read until a query scans it.
pub fn open_store_with(dir: &Path, cache_bytes: Option<u64>) -> Result<ShardedStore, SegmentError> {
    let header = read_header(dir)?;
    let dict = segment::read_dictionary(dir, &header)?;
    let stats = read_stats(dir, &header)?;
    let payload = header.triples * TRIPLE_BYTES * RUN_ORDERS.len() as u64;
    let budget =
        cache_bytes.unwrap_or_else(|| (payload / DEFAULT_CACHE_FRACTION).max(MIN_CACHE_BYTES));
    let cache = Arc::new(BlockCache::new(budget));
    let mut built: Vec<(Box<dyn TripleStore>, std::time::Duration)> =
        Vec::with_capacity(header.shards.len());
    for ((i, meta), shard_stats) in header.shards.iter().enumerate().zip(stats) {
        let t0 = Instant::now();
        let shard = DiskShardStore::open(
            dir,
            i,
            meta,
            header.block_triples,
            shard_stats,
            Arc::clone(&cache),
        )?;
        built.push((Box::new(shard), t0.elapsed()));
    }
    Ok(ShardedStore::assemble(dict, header.shard_by, built))
}

const NIL: usize = usize::MAX;

/// One cached decoded block, threaded into the LRU list by slot index.
struct Slot {
    key: u64,
    block: Option<Arc<Vec<IdTriple>>>,
    bytes: u64,
    prev: usize,
    next: usize,
}

/// The LRU bookkeeping behind one mutex: a key → slot map plus an
/// intrusive recency list over a slot arena (no per-access allocation).
struct Lru {
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    resident_bytes: u64,
}

impl Lru {
    fn new() -> Self {
        Lru {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            resident_bytes: 0,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head == NIL {
            self.tail = i;
        } else {
            self.slots[self.head].prev = i;
        }
        self.head = i;
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.detach(i);
            self.push_front(i);
        }
    }

    fn insert(&mut self, key: u64, block: Arc<Vec<IdTriple>>, bytes: u64) {
        let slot = Slot {
            key,
            block: Some(block),
            bytes,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.resident_bytes += bytes;
        self.push_front(i);
    }

    fn evict_tail(&mut self) {
        let i = self.tail;
        debug_assert_ne!(i, NIL, "eviction from an empty cache");
        self.detach(i);
        let slot = &mut self.slots[i];
        self.map.remove(&slot.key);
        self.resident_bytes -= slot.bytes;
        slot.block = None;
        self.free.push(i);
    }
}

/// A thread-safe LRU cache of decoded segment blocks, capped by a byte
/// budget and shared by every shard of one opened store. Lookups and
/// recency updates hold one short mutex; disk reads happen outside it,
/// so concurrent workers never serialize on I/O (two threads missing
/// the same block may both read it — the first insert wins, the other
/// copy is transient working memory).
///
/// The budget is a hard bound on *cached* residency: a block larger
/// than the whole budget is served uncached to its caller, and an
/// insert evicts from the cold tail until the total fits again, so
/// `resident_bytes <= budget_bytes` holds at every instant (asserted in
/// debug builds, witnessed by the monotone peak gauge in release).
pub struct BlockCache {
    budget_bytes: u64,
    lru: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    peak_resident_bytes: AtomicU64,
}

impl BlockCache {
    /// An empty cache with a `budget_bytes` cap.
    pub fn new(budget_bytes: u64) -> Self {
        BlockCache {
            budget_bytes,
            lru: Mutex::new(Lru::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            peak_resident_bytes: AtomicU64::new(0),
        }
    }

    fn pack(shard: usize, run: usize, block: usize) -> u64 {
        debug_assert!(shard < (1 << 24) && run < RUN_ORDERS.len() && block < (1 << 32));
        (shard as u64) << 40 | (run as u64) << 32 | block as u64
    }

    /// The block `(shard, run, block)`, from cache or — on a miss — via
    /// `read` (called without the cache lock held).
    pub fn get_or_read(
        &self,
        shard: usize,
        run: usize,
        block: usize,
        read: impl FnOnce() -> Vec<IdTriple>,
    ) -> Arc<Vec<IdTriple>> {
        let key = Self::pack(shard, run, block);
        {
            let mut lru = self.lru.lock().expect("block cache lock");
            if let Some(&i) = lru.map.get(&key) {
                lru.touch(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(lru.slots[i].block.as_ref().expect("mapped slot is filled"));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let block_arc = Arc::new(read());
        let bytes = block_arc.len() as u64 * TRIPLE_BYTES + SLOT_OVERHEAD;
        if bytes > self.budget_bytes {
            // Larger than the whole budget: serve uncached. The
            // caller's Arc is working memory, not residency.
            return block_arc;
        }
        let mut lru = self.lru.lock().expect("block cache lock");
        if let Some(&i) = lru.map.get(&key) {
            // Another thread read the same block meanwhile; keep the
            // incumbent so concurrent holders share one copy.
            lru.touch(i);
            return Arc::clone(lru.slots[i].block.as_ref().expect("mapped slot is filled"));
        }
        lru.insert(key, Arc::clone(&block_arc), bytes);
        while lru.resident_bytes > self.budget_bytes {
            lru.evict_tail();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        debug_assert!(
            lru.resident_bytes <= self.budget_bytes,
            "resident block bytes exceed the cache budget"
        );
        self.peak_resident_bytes
            .fetch_max(lru.resident_bytes, Ordering::Relaxed);
        block_arc
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let lru = self.lru.lock().expect("block cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_blocks: lru.map.len() as u64,
            resident_bytes: lru.resident_bytes,
            peak_resident_bytes: self.peak_resident_bytes.load(Ordering::Relaxed),
            budget_bytes: self.budget_bytes,
        }
    }
}

/// One shard of a saved segment store: three sorted block-cut runs on
/// disk, scanned through the store-wide [`BlockCache`]. Like the
/// in-memory shard stores it carries an empty dictionary — ids live in
/// the shared dictionary the enclosing [`ShardedStore`] owns.
pub struct DiskShardStore {
    dict: Dictionary,
    path: PathBuf,
    file: File,
    shard: usize,
    index: BlockIndex,
    cache: Arc<BlockCache>,
    /// The persisted statistics summary of this shard, decoded from the
    /// segment's stats section at open — what lets
    /// [`DiskShardStore::estimate`] answer the planner without reading
    /// a single block.
    stats: StoreStats,
    /// Blocks actually read off disk per run (cache misses through this
    /// shard) — the laziness tests' gauge.
    blocks_read: [AtomicU64; 3],
}

/// A resolved scan: which run, which candidate blocks, and the key
/// bounds that trim the range's boundary blocks.
struct BlockPlan {
    run: usize,
    perm: [usize; 3],
    blocks: std::ops::Range<usize>,
    lo: [Id; 3],
    hi: [Id; 3],
    /// The original pattern, kept only when bound positions remain
    /// outside the run's usable prefix and need residual filtering.
    residual: Option<Pattern>,
}

impl DiskShardStore {
    /// Binds shard `index` of the segment directory, validating that
    /// its file exists with exactly the size the root records and
    /// reading its checksummed block index. `stats` is the shard's
    /// summary from [`read_stats`]; `cache` the store-wide block cache.
    pub fn open(
        dir: &Path,
        index: usize,
        meta: &ShardMeta,
        block_triples: u32,
        stats: StoreStats,
        cache: Arc<BlockCache>,
    ) -> Result<Self, SegmentError> {
        let path = dir.join(shard_file_name(index));
        let size = match std::fs::metadata(&path) {
            Ok(m) => m.len(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SegmentError::Invalid(format!(
                    "missing shard file '{}'",
                    path.display()
                )));
            }
            Err(e) => return Err(e.into()),
        };
        if size != meta.file_bytes(block_triples) {
            return Err(SegmentError::Invalid(format!(
                "shard file '{}' is truncated: expected {} bytes, found {size}",
                path.display(),
                meta.file_bytes(block_triples)
            )));
        }
        let block_index = read_block_index(&path, meta, block_triples)?;
        let file = File::open(&path)?;
        Ok(DiskShardStore {
            dict: Dictionary::new(),
            path,
            file,
            shard: index,
            index: block_index,
            cache,
            stats,
            blocks_read: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        })
    }

    /// How many blocks of run `i` this shard has read off disk (cache
    /// misses; hits and untouched blocks don't count).
    pub fn blocks_read(&self, i: usize) -> u64 {
        self.blocks_read[i].load(Ordering::Relaxed)
    }

    /// This shard's block cache counters (shared store-wide).
    pub fn block_cache(&self) -> &BlockCache {
        &self.cache
    }

    /// One block's raw payload bytes, positioned-read so concurrent
    /// workers never contend on a shared seek offset.
    fn read_block_bytes(&self, run: usize, block: usize) -> std::io::Result<Vec<u8>> {
        let offset = self.index.block_offset(run, block);
        let mut buf = vec![0u8; self.index.block_len(block) * TRIPLE_BYTES as usize];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = File::open(&self.path)?;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
        }
        Ok(buf)
    }

    /// Block `block` of run `run`, from the shared cache or freshly
    /// read, verified and decoded. Post-open corruption (the file
    /// changed under us after its size and index were validated) panics
    /// with the checksum message — scans have no error channel, and
    /// serving wrong triples silently would be worse.
    fn block(&self, run: usize, block: usize) -> Arc<Vec<IdTriple>> {
        self.cache.get_or_read(self.shard, run, block, || {
            self.blocks_read[run].fetch_add(1, Ordering::Relaxed);
            let bytes = self.read_block_bytes(run, block).unwrap_or_else(|e| {
                panic!(
                    "reading block {block} of run {:?} in '{}': {e}",
                    RUN_ORDERS[run],
                    self.path.display()
                )
            });
            if Checksum::of(&bytes) != self.index.runs[run].checksums[block] {
                panic!(
                    "block checksum mismatch in '{}' (run {:?}, block {block}): corrupted after open",
                    self.path.display(),
                    RUN_ORDERS[run]
                );
            }
            segment::decode_triples(&bytes)
        })
    }

    /// The run whose key order puts the most bound positions first,
    /// plus the usable prefix length — [`crate::NativeStore`]'s index
    /// choice restricted to the three on-disk orderings.
    fn best_run(pattern: &Pattern) -> (usize, usize) {
        let bound = [
            pattern[0].is_some(),
            pattern[1].is_some(),
            pattern[2].is_some(),
        ];
        let mut best = (0usize, 0usize);
        for (i, order) in RUN_ORDERS.iter().enumerate() {
            let mut prefix = 0;
            for &pos in &order.permutation() {
                if bound[pos] {
                    prefix += 1;
                } else {
                    break;
                }
            }
            if prefix > best.1 {
                best = (i, prefix);
            }
            if best.1 == 3 {
                break;
            }
        }
        best
    }

    /// Resolves a pattern to its candidate block range: pick the best
    /// run, turn the bound prefix into inclusive key bounds, and binary
    /// search the block index's first keys. Touches no payload.
    fn block_plan(&self, pattern: &Pattern) -> BlockPlan {
        let (run, prefix_len) = Self::best_run(pattern);
        let perm = RUN_ORDERS[run].permutation();
        let mut lo = [0 as Id; 3];
        let mut hi = [Id::MAX; 3];
        for slot in 0..prefix_len {
            let v = pattern[perm[slot]].expect("prefix position is bound");
            lo[slot] = v;
            hi[slot] = v;
        }
        let blocks = self.index.candidate_blocks(run, lo, hi);
        let bound = pattern.iter().filter(|p| p.is_some()).count();
        BlockPlan {
            run,
            perm,
            blocks,
            lo,
            hi,
            residual: (bound > prefix_len).then_some(*pattern),
        }
    }

    fn block_scan(&self, plan: BlockPlan) -> BlockScan<'_> {
        BlockScan {
            shard: self,
            run: plan.run,
            blocks: plan.blocks,
            perm: plan.perm,
            lo: plan.lo,
            hi: plan.hi,
            residual: plan.residual,
            cur: None,
            done: false,
        }
    }
}

/// Streams the matching triples of a candidate block range, pulling one
/// block at a time through the cache: within each block, skip below the
/// lower key bound (a no-op except in the range's first block), stop
/// for good past the upper bound (only the range's last block can hold
/// such keys — any earlier block would have pushed its successor's
/// first key past the bound), and residually filter positions the
/// prefix doesn't pin.
struct BlockScan<'a> {
    shard: &'a DiskShardStore,
    run: usize,
    blocks: std::ops::Range<usize>,
    perm: [usize; 3],
    lo: [Id; 3],
    hi: [Id; 3],
    residual: Option<Pattern>,
    cur: Option<(Arc<Vec<IdTriple>>, usize)>,
    done: bool,
}

impl Iterator for BlockScan<'_> {
    type Item = IdTriple;

    fn next(&mut self) -> Option<IdTriple> {
        loop {
            if self.done {
                return None;
            }
            if let Some((block, pos)) = &mut self.cur {
                while *pos < block.len() {
                    let t = block[*pos];
                    *pos += 1;
                    if run_key(&t, self.perm) > self.hi {
                        self.done = true;
                        return None;
                    }
                    match &self.residual {
                        Some(p) if !matches(&t, p) => continue,
                        _ => return Some(t),
                    }
                }
                self.cur = None;
            }
            let Some(b) = self.blocks.next() else {
                self.done = true;
                return None;
            };
            let block = self.shard.block(self.run, b);
            let start = block.partition_point(|t| run_key(t, self.perm) < self.lo);
            self.cur = Some((block, start));
        }
    }
}

impl BlockSource for DiskShardStore {
    fn iter_blocks<'a>(
        &'a self,
        run: usize,
        blocks: std::ops::Range<usize>,
        pattern: Pattern,
    ) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        // Re-derive the key bounds from the pattern (deterministic, so
        // they equal the ones the chunk list was built from) and walk
        // just the chunk's sub-range.
        let mut plan = self.block_plan(&pattern);
        debug_assert_eq!(plan.run, run, "chunk run disagrees with the pattern's plan");
        debug_assert!(plan.blocks.start <= blocks.start && blocks.end <= plan.blocks.end);
        plan.run = run;
        plan.blocks = blocks;
        Box::new(self.block_scan(plan))
    }
}

impl TripleStore for DiskShardStore {
    fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn len(&self) -> usize {
        self.index.triples as usize
    }

    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        Box::new(self.block_scan(self.block_plan(&pattern)))
    }

    /// Partitioned scan over the best run's candidate blocks, exactly
    /// like [`crate::NativeStore`] over its index range: contiguous
    /// block sub-ranges concatenating to scan order, so the morsel
    /// exchange fans out over disk shards unchanged. Chunks carry block
    /// numbers, not borrowed triples — a worker materializes each block
    /// through the cache when it gets there.
    fn scan_chunks(&self, pattern: Pattern, n: usize) -> Vec<ScanChunk<'_>> {
        let plan = self.block_plan(&pattern);
        let first = plan.blocks.start;
        let chunks: Vec<ScanChunk<'_>> = split_ranges(plan.blocks.len(), n)
            .into_iter()
            .map(|r| {
                let (start, end) = (first + r.start, first + r.end);
                ScanChunk::Blocks {
                    source: self,
                    run: plan.run,
                    start,
                    end,
                    len: (start..end).map(|b| self.index.block_len(b)).sum(),
                }
            })
            .collect();
        debug_assert_chunks_cover(self, pattern, &chunks);
        chunks
    }

    /// Answered entirely from the persisted statistics summary — the
    /// cold path: estimating never reads a block off disk, so a freshly
    /// opened store plans a whole workload at O(header) memory.
    fn estimate(&self, pattern: Pattern) -> u64 {
        self.stats.estimate_pattern(pattern)
    }

    fn stats(&self) -> Option<&StoreStats> {
        Some(&self.stats)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{IndexSelection, NativeStore};
    use crate::segment::tests::TempDir;
    use crate::shard::ShardBackend;
    use sp2b_rdf::{Iri, Subject, Term};

    fn graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add(
                Subject::iri(format!("http://x/s{}", i % 23)),
                Iri::new(format!("http://x/p{}", i % 7)),
                Term::iri(format!("http://x/o{}", i % 13)),
            );
        }
        g
    }

    fn decoded(store: &dyn TripleStore, pattern: Pattern) -> Vec<String> {
        let mut v: Vec<String> = store
            .scan(pattern)
            .map(|t| format!("{} {} {}", t[0], t[1], t[2]))
            .collect();
        v.sort();
        v
    }

    /// Opens shard 0 of a saved single-shard directory with its own
    /// cache of `budget` bytes.
    fn open_shard0(dir: &Path, budget: u64) -> DiskShardStore {
        let header = read_header(dir).expect("header");
        let stats = read_stats(dir, &header).expect("stats");
        DiskShardStore::open(
            dir,
            0,
            &header.shards[0],
            header.block_triples,
            stats[0].clone(),
            Arc::new(BlockCache::new(budget)),
        )
        .expect("open")
    }

    #[test]
    fn saved_store_reopens_and_agrees_with_native_at_all_shard_counts() {
        let g = graph(400);
        let flat = NativeStore::from_graph(&g);
        for shards in [1usize, 2, 4] {
            let tmp = TempDir::new("open-agree");
            // Tiny blocks: every run spans many blocks, so boundary
            // handling is exercised at every pattern shape.
            let stats = save_graph_with(tmp.path(), &g, shards, ShardBy::Subject, 7).expect("save");
            assert_eq!(stats.triples as usize, g.len());
            let opened = open_store(tmp.path()).expect("open");
            assert_eq!(opened.len(), flat.len());
            assert_eq!(opened.shard_count(), shards);
            assert_eq!(opened.dictionary().len(), flat.dictionary().len());
            // Ids transfer: both stores interned in document order.
            let s1 = opened.resolve(&Term::iri("http://x/s1"));
            let p2 = opened.resolve(&Term::iri("http://x/p2"));
            let o3 = opened.resolve(&Term::iri("http://x/o3"));
            assert_eq!(s1, flat.resolve(&Term::iri("http://x/s1")));
            for pattern in [
                [None, None, None],
                [s1, None, None],
                [None, p2, None],
                [None, None, o3],
                [s1, p2, None],
                [None, p2, o3],
                [s1, p2, o3],
            ] {
                assert_eq!(
                    decoded(&opened, pattern),
                    decoded(&flat, pattern),
                    "{shards} shards, pattern {pattern:?}"
                );
                assert_eq!(
                    opened.scan(pattern).count() as u64,
                    flat.estimate(pattern),
                    "{shards} shards, pattern {pattern:?}: count"
                );
                assert_eq!(
                    opened.contains(pattern),
                    flat.scan(pattern).next().is_some(),
                    "{shards} shards, pattern {pattern:?}: contains"
                );
            }
        }
    }

    #[test]
    fn blocks_load_lazily_per_access_pattern() {
        let g = graph(200);
        let tmp = TempDir::new("lazy");
        save_graph(tmp.path(), &g, 1, ShardBy::Subject).expect("save");
        let shard = open_shard0(tmp.path(), 1 << 20);
        assert!(
            (0..3).all(|i| shard.blocks_read(i) == 0),
            "open reads no payload at all"
        );
        let p = 1u32; // any id; the scan route matters, not the hits
        shard.scan([None, Some(p), None]).count();
        assert!(shard.blocks_read(1) > 0, "P-bound scan reads the PSO run");
        assert!(
            shard.blocks_read(0) == 0 && shard.blocks_read(2) == 0,
            "only that one"
        );
        shard.scan([None, None, None]).count();
        assert!(shard.blocks_read(0) > 0, "full scan reads the SPO run");
        // A repeat of the same scans is all cache hits: no new reads.
        let before: Vec<u64> = (0..3).map(|i| shard.blocks_read(i)).collect();
        shard.scan([None, Some(p), None]).count();
        shard.scan([None, None, None]).count();
        let after: Vec<u64> = (0..3).map(|i| shard.blocks_read(i)).collect();
        assert_eq!(before, after, "warm scans hit the cache");
        assert!(shard.block_cache().stats().hits > 0);
    }

    #[test]
    fn bound_scans_touch_only_candidate_blocks() {
        let g = graph(400);
        let tmp = TempDir::new("window");
        // 7-triple blocks: a subject-bound scan covers a small slice of
        // the many SPO blocks.
        save_graph_with(tmp.path(), &g, 1, ShardBy::Subject, 7).expect("save");
        let shard = open_shard0(tmp.path(), 1 << 20);
        let total_blocks = shard.index.blocks() as u64;
        assert!(total_blocks > 10, "test premise: many blocks per run");
        let flat = NativeStore::from_graph(&g);
        let s1 = flat.resolve(&Term::iri("http://x/s1"));
        shard.scan([s1, None, None]).count();
        let read = shard.blocks_read(0);
        assert!(read > 0, "the scan read something");
        assert!(
            read < total_blocks / 2,
            "a one-subject scan read {read} of {total_blocks} SPO blocks"
        );
    }

    #[test]
    fn estimates_read_no_blocks_on_a_cold_store() {
        let g = graph(300);
        let tmp = TempDir::new("cold-estimate");
        save_graph(tmp.path(), &g, 2, ShardBy::Subject).expect("save");
        let header = read_header(tmp.path()).expect("header");
        let stats = read_stats(tmp.path(), &header).expect("stats");
        let cache = Arc::new(BlockCache::new(1 << 20));
        let mut shards = Vec::new();
        for ((i, meta), s) in header.shards.iter().enumerate().zip(stats) {
            shards.push(
                DiskShardStore::open(
                    tmp.path(),
                    i,
                    meta,
                    header.block_triples,
                    s,
                    Arc::clone(&cache),
                )
                .expect("open"),
            );
        }
        let opened = open_store(tmp.path()).expect("open");
        let s1 = opened.resolve(&Term::iri("http://x/s1"));
        let p1 = opened.resolve(&Term::iri("http://x/p1"));
        let o1 = opened.resolve(&Term::iri("http://x/o1"));
        // Every bound-position combination, on the sharded store and on
        // the bare shards: none may read a block.
        for pattern in [
            [None, None, None],
            [s1, None, None],
            [None, p1, None],
            [None, None, o1],
            [s1, p1, None],
            [s1, None, o1],
            [None, p1, o1],
            [s1, p1, o1],
        ] {
            opened.estimate(pattern);
            opened.stats().expect("disk store carries stats");
            for shard in &shards {
                shard.estimate(pattern);
                // Block-range resolution itself is also I/O-free.
                shard.block_plan(&pattern);
            }
        }
        for shard in &shards {
            assert!(
                (0..3).all(|i| shard.blocks_read(i) == 0),
                "estimation or range planning read a block"
            );
        }
        assert_eq!(cache.stats().misses, 0, "the cache never saw a read");
        // Estimates stay sane: the full pattern matches everything.
        assert_eq!(opened.estimate([None, None, None]), g.len() as u64);
        assert_eq!(
            opened.estimate([None, p1, None]),
            opened.scan([None, p1, None]).count() as u64,
            "single-predicate estimates are exact from per-predicate stats"
        );
    }

    #[test]
    fn scan_chunks_cover_like_the_other_stores() {
        let g = graph(300);
        let tmp = TempDir::new("chunks");
        save_graph_with(tmp.path(), &g, 2, ShardBy::Subject, 7).expect("save");
        let opened = open_store(tmp.path()).expect("open");
        let p1 = opened.resolve(&Term::iri("http://x/p1"));
        let s1 = opened.resolve(&Term::iri("http://x/s1"));
        for pattern in [[None, None, None], [None, p1, None], [s1, None, None]] {
            let sequential: Vec<IdTriple> = opened.scan(pattern).collect();
            for n in [1, 3, 8] {
                let chunks = opened.scan_chunks(pattern, n);
                let chunked: Vec<IdTriple> = chunks.iter().flat_map(|c| c.iter(pattern)).collect();
                assert_eq!(chunked, sequential, "pattern {pattern:?} n {n}");
            }
        }
    }

    #[test]
    fn lru_cache_evicts_cold_blocks_within_its_budget() {
        let g = graph(400);
        let tmp = TempDir::new("lru");
        save_graph_with(tmp.path(), &g, 1, ShardBy::Subject, 16).expect("save");
        // Room for a handful of 16-triple (192 B + overhead) blocks,
        // far fewer than one run holds.
        let budget = 4 * (16 * TRIPLE_BYTES + SLOT_OVERHEAD);
        let shard = open_shard0(tmp.path(), budget);
        let run_blocks = shard.index.blocks() as u64;
        assert!(run_blocks > 8, "test premise: more blocks than fit");
        shard.scan([None, None, None]).count();
        let stats = shard.block_cache().stats();
        assert_eq!(stats.misses, run_blocks, "every SPO block read once");
        assert!(stats.evictions > 0, "the full scan overflowed the budget");
        assert!(stats.resident_bytes <= budget);
        assert!(stats.peak_resident_bytes <= budget, "budget is a hard cap");
        assert!(stats.resident_blocks <= 4);
        // A second full scan re-reads what was evicted (sequential
        // flooding is LRU's worst case) but never exceeds the budget.
        shard.scan([None, None, None]).count();
        let stats = shard.block_cache().stats();
        assert!(stats.peak_resident_bytes <= budget);
        // Hammering one hot block is all hits once resident.
        let hits_before = shard.block_cache().stats().hits;
        for _ in 0..10 {
            shard.block(0, 0);
        }
        assert!(shard.block_cache().stats().hits >= hits_before + 9);
    }

    #[test]
    fn oversized_blocks_bypass_the_cache_entirely() {
        let g = graph(200);
        let tmp = TempDir::new("bypass");
        save_graph(tmp.path(), &g, 1, ShardBy::Subject).expect("save");
        // Budget smaller than any single block: nothing is ever cached,
        // but scans still answer correctly.
        let shard = open_shard0(tmp.path(), 16);
        let flat = NativeStore::from_graph(&g);
        assert_eq!(
            decoded(&shard, [None, None, None]),
            decoded(&flat, [None, None, None])
        );
        let stats = shard.block_cache().stats();
        assert!(stats.misses > 0);
        assert_eq!(stats.resident_blocks, 0, "nothing fits, nothing resides");
        assert_eq!(stats.peak_resident_bytes, 0);
    }

    #[test]
    fn shards_of_one_store_share_one_cache() {
        let g = graph(300);
        let tmp = TempDir::new("shared");
        save_graph(tmp.path(), &g, 3, ShardBy::Subject).expect("save");
        let opened = open_store_with(tmp.path(), Some(1 << 20)).expect("open");
        opened.scan([None, None, None]).count();
        let stats = opened.cache_stats().expect("disk store exposes its cache");
        assert_eq!(stats.budget_bytes, 1 << 20);
        // All three shards' SPO reads landed in the same cache.
        assert_eq!(stats.misses, 3, "one default-size block per shard");
    }

    #[test]
    fn missing_and_truncated_shard_files_fail_open_cleanly() {
        let g = graph(150);
        let tmp = TempDir::new("shard-missing");
        save_graph(tmp.path(), &g, 2, ShardBy::Subject).expect("save");
        // ShardedStore carries no Debug impl, so unwrap the error by hand.
        fn open_err(dir: &Path) -> SegmentError {
            match open_store(dir) {
                Err(e) => e,
                Ok(_) => panic!("open of a damaged directory must fail"),
            }
        }
        let shard1 = tmp.path().join(shard_file_name(1));
        let bytes = std::fs::read(&shard1).unwrap();
        std::fs::remove_file(&shard1).unwrap();
        let err = open_err(tmp.path());
        assert!(err.to_string().contains("missing shard file"), "{err}");
        std::fs::write(&shard1, &bytes[..bytes.len() - 12]).unwrap();
        let err = open_err(tmp.path());
        assert!(err.to_string().contains("truncated"), "{err}");
        // An index flipped in place (size intact) fails open by its
        // checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        std::fs::write(&shard1, &corrupt).unwrap();
        let err = open_err(tmp.path());
        assert!(err.to_string().contains("block index checksum"), "{err}");
    }

    #[test]
    fn post_open_block_corruption_panics_with_the_checksum_message() {
        let g = graph(150);
        let tmp = TempDir::new("block-corrupt");
        save_graph(tmp.path(), &g, 1, ShardBy::Subject).expect("save");
        let opened = open_store(tmp.path()).expect("open validates sizes and index only");
        // Corrupt a triple body *after* open: same size, wrong bytes.
        // Offset 6 sits inside the first (SPO) block, the one a full
        // scan reads.
        let shard0 = tmp.path().join(shard_file_name(0));
        let mut bytes = std::fs::read(&shard0).unwrap();
        bytes[6] ^= 0xff;
        std::fs::write(&shard0, &bytes).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            opened.scan([None, None, None]).count()
        }));
        let msg = match caught {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
            Ok(_) => panic!("corrupted block must not scan"),
        };
        assert!(msg.contains("checksum"), "panic names the checksum: {msg}");
    }

    #[test]
    fn disk_backend_is_never_built_from_buckets() {
        let caught = std::panic::catch_unwind(|| {
            ShardedStore::from_graph(&graph(10), 2, ShardBy::Subject, ShardBackend::Disk)
        });
        assert!(caught.is_err(), "building disk shards in memory is a bug");
    }

    #[test]
    fn pso_partitioning_survives_the_roundtrip() {
        let g = graph(200);
        let tmp = TempDir::new("pso");
        save_graph(tmp.path(), &g, 4, ShardBy::PredicateSubject).expect("save");
        let opened = open_store(tmp.path()).expect("open");
        assert_eq!(opened.shard_by(), ShardBy::PredicateSubject);
        let flat = NativeStore::with_indexes(&g, IndexSelection::all());
        assert_eq!(
            decoded(&opened, [None, None, None]),
            decoded(&flat, [None, None, None])
        );
    }
}
