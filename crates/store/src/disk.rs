//! The out-of-core persistent store: a [`ShardedStore`] whose shards
//! read lazily from saved segment files.
//!
//! [`open_store`] turns a directory written by `sp2b save` (see
//! [`crate::segment`] for the format) back into a queryable store. The
//! open path reads only the checksummed segment root and the shared
//! dictionary — O(header + dictionary), never O(parse) — and validates
//! each shard file's existence and exact size. The three sorted runs of
//! a shard (SPO, PSO, OSP) stay on disk until a scan first needs one;
//! [`DiskShardStore::run`] then reads, checksums and caches it, so a
//! workload touching one access pattern pays for one run per shard and
//! the rest never leave the disk.
//!
//! Because the shards sit behind the ordinary [`ShardedStore`] (same
//! shared dictionary, same routing, same chunk concatenation), the
//! morsel exchange, bound-key routing and every equivalence guarantee
//! of the in-memory stores apply unchanged.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

use sp2b_rdf::Graph;

use crate::dictionary::{Dictionary, IdTriple};
use crate::native::prefix_range;
use crate::segment::{
    self, read_header, read_run, read_stats, shard_file_name, write_segments, SegmentError,
    SegmentStats, ShardMeta, RUN_ORDERS,
};
use crate::shard::{ShardBy, ShardedStore};
use crate::stats::StoreStats;
use crate::traits::{
    debug_assert_chunks_cover, matches, split_ranges, Pattern, ScanChunk, TripleStore,
};

/// Saves a graph as a segment directory: terms are interned in document
/// order (ids identical to an in-memory load of the same document),
/// triples are routed by `shard_by` into `shards` buckets, and
/// [`write_segments`] lays the runs out on disk.
pub fn save_graph(
    dir: &Path,
    graph: &Graph,
    shards: usize,
    shard_by: ShardBy,
) -> Result<SegmentStats, SegmentError> {
    let n = shards.max(1);
    let mut dict = Dictionary::new();
    let mut buckets: Vec<Vec<IdTriple>> = (0..n).map(|_| Vec::new()).collect();
    for t in graph.iter() {
        let enc = dict.encode_triple(t);
        buckets[shard_by.shard_of(&enc, n)].push(enc);
    }
    write_segments(dir, &dict, shard_by, buckets)
}

/// Opens a segment directory as a [`ShardedStore`] of lazy disk shards.
///
/// Cost: the segment root, the dictionary, and one `stat` per shard
/// file (existence + exact expected size, so truncation surfaces here
/// as a clean error rather than later as a failed read). No triple run
/// is read until a query scans it.
pub fn open_store(dir: &Path) -> Result<ShardedStore, SegmentError> {
    let header = read_header(dir)?;
    let dict = segment::read_dictionary(dir, &header)?;
    let stats = read_stats(dir, &header)?;
    let mut built: Vec<(Box<dyn TripleStore>, std::time::Duration)> =
        Vec::with_capacity(header.shards.len());
    for ((i, meta), shard_stats) in header.shards.iter().enumerate().zip(stats) {
        let t0 = Instant::now();
        let shard = DiskShardStore::open(dir, i, meta, shard_stats)?;
        built.push((Box::new(shard), t0.elapsed()));
    }
    Ok(ShardedStore::assemble(dict, header.shard_by, built))
}

/// One shard of a saved segment store: three sorted runs on disk, each
/// read, checksum-verified and cached on first use. Like the in-memory
/// shard stores it carries an empty dictionary — ids live in the shared
/// dictionary the enclosing [`ShardedStore`] owns.
pub struct DiskShardStore {
    dict: Dictionary,
    path: PathBuf,
    triples: u64,
    run_checksums: [u64; 3],
    runs: [OnceLock<Vec<IdTriple>>; 3],
    /// The persisted statistics summary of this shard, decoded from the
    /// segment's stats section at open — what lets
    /// [`DiskShardStore::estimate`] answer the planner without faulting
    /// a run into memory.
    stats: StoreStats,
    /// Debug-build gauge of runs faulted in from disk by this shard,
    /// behind the cold-path-free estimation test.
    #[cfg(debug_assertions)]
    run_faults: std::sync::atomic::AtomicU64,
}

impl DiskShardStore {
    /// Binds shard `index` of the segment directory, validating that its
    /// file exists with exactly the size the root records. `stats` is
    /// the shard's summary from [`read_stats`].
    pub fn open(
        dir: &Path,
        index: usize,
        meta: &ShardMeta,
        stats: StoreStats,
    ) -> Result<Self, SegmentError> {
        let path = dir.join(shard_file_name(index));
        let size = match std::fs::metadata(&path) {
            Ok(m) => m.len(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SegmentError::Invalid(format!(
                    "missing shard file '{}'",
                    path.display()
                )));
            }
            Err(e) => return Err(e.into()),
        };
        if size != meta.file_bytes() {
            return Err(SegmentError::Invalid(format!(
                "shard file '{}' is truncated: expected {} bytes, found {size}",
                path.display(),
                meta.file_bytes()
            )));
        }
        Ok(DiskShardStore {
            dict: Dictionary::new(),
            path,
            triples: meta.triples,
            run_checksums: meta.run_checksums,
            runs: Default::default(),
            stats,
            #[cfg(debug_assertions)]
            run_faults: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The run for slot `i` of [`RUN_ORDERS`], read and verified on
    /// first use. Post-open corruption (the file changed under us after
    /// its size was validated) panics with the checksum message —
    /// scans have no error channel, and serving wrong triples silently
    /// would be worse.
    fn run(&self, i: usize) -> &[IdTriple] {
        self.runs[i].get_or_init(|| {
            #[cfg(debug_assertions)]
            self.run_faults
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            read_run(&self.path, i, self.triples, self.run_checksums[i]).unwrap_or_else(|e| {
                panic!(
                    "reading run {:?} of '{}': {e}",
                    RUN_ORDERS[i],
                    self.path.display()
                )
            })
        })
    }

    /// True if run `i` has been read into memory (laziness tests).
    pub fn run_loaded(&self, i: usize) -> bool {
        self.runs[i].get().is_some()
    }

    /// How many runs this shard has faulted in from disk (debug builds
    /// only; the cold-path-free estimation test diffs it).
    #[cfg(debug_assertions)]
    pub fn run_faults(&self) -> u64 {
        self.run_faults.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The run whose key order puts the most bound positions first,
    /// plus the usable prefix length — [`crate::NativeStore`]'s index
    /// choice restricted to the three on-disk orderings.
    fn best_run(pattern: &Pattern) -> (usize, usize) {
        let bound = [
            pattern[0].is_some(),
            pattern[1].is_some(),
            pattern[2].is_some(),
        ];
        let mut best = (0usize, 0usize);
        for (i, order) in RUN_ORDERS.iter().enumerate() {
            let mut prefix = 0;
            for &pos in &order.permutation() {
                if bound[pos] {
                    prefix += 1;
                } else {
                    break;
                }
            }
            if prefix > best.1 {
                best = (i, prefix);
            }
            if best.1 == 3 {
                break;
            }
        }
        best
    }

    /// The contiguous slice of the best run matching the pattern's
    /// bound prefix (loading the run if this is its first use).
    fn range(&self, pattern: &Pattern) -> (&[IdTriple], usize) {
        let (slot, prefix_len) = Self::best_run(pattern);
        let run = self.run(slot);
        let perm = RUN_ORDERS[slot].permutation();
        (prefix_range(run, perm, prefix_len, pattern), prefix_len)
    }
}

impl TripleStore for DiskShardStore {
    fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn len(&self) -> usize {
        self.triples as usize
    }

    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        let (range, prefix_len) = self.range(&pattern);
        let bound_count = pattern.iter().filter(|p| p.is_some()).count();
        if prefix_len == bound_count {
            Box::new(range.iter().copied())
        } else {
            Box::new(range.iter().filter(move |t| matches(t, &pattern)).copied())
        }
    }

    /// Partitioned scan over the best run's prefix range, exactly like
    /// [`crate::NativeStore`]: contiguous sub-ranges concatenating to
    /// scan order, so the morsel exchange fans out over disk shards
    /// unchanged.
    fn scan_chunks(&self, pattern: Pattern, n: usize) -> Vec<ScanChunk<'_>> {
        let (range, _) = self.range(&pattern);
        let chunks: Vec<ScanChunk<'_>> = split_ranges(range.len(), n)
            .into_iter()
            .map(|r| ScanChunk::Triples(&range[r]))
            .collect();
        debug_assert_chunks_cover(self, pattern, &chunks);
        chunks
    }

    /// Answered entirely from the persisted statistics summary — the
    /// cold path: estimating never reads a run off disk, so a freshly
    /// opened store plans a whole workload at O(header) memory.
    /// (The old implementation measured the best run's range width,
    /// faulting an entire sorted run into memory per estimate.)
    fn estimate(&self, pattern: Pattern) -> u64 {
        self.stats.estimate_pattern(pattern)
    }

    fn stats(&self) -> Option<&StoreStats> {
        Some(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{IndexSelection, NativeStore};
    use crate::segment::tests::TempDir;
    use crate::shard::ShardBackend;
    use sp2b_rdf::{Iri, Subject, Term};

    fn graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add(
                Subject::iri(format!("http://x/s{}", i % 23)),
                Iri::new(format!("http://x/p{}", i % 7)),
                Term::iri(format!("http://x/o{}", i % 13)),
            );
        }
        g
    }

    fn decoded(store: &dyn TripleStore, pattern: Pattern) -> Vec<String> {
        let mut v: Vec<String> = store
            .scan(pattern)
            .map(|t| format!("{} {} {}", t[0], t[1], t[2]))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn saved_store_reopens_and_agrees_with_native_at_all_shard_counts() {
        let g = graph(400);
        let flat = NativeStore::from_graph(&g);
        for shards in [1usize, 2, 4] {
            let tmp = TempDir::new("open-agree");
            let stats = save_graph(tmp.path(), &g, shards, ShardBy::Subject).expect("save");
            assert_eq!(stats.triples as usize, g.len());
            let opened = open_store(tmp.path()).expect("open");
            assert_eq!(opened.len(), flat.len());
            assert_eq!(opened.shard_count(), shards);
            assert_eq!(opened.dictionary().len(), flat.dictionary().len());
            // Ids transfer: both stores interned in document order.
            let s1 = opened.resolve(&Term::iri("http://x/s1"));
            let p2 = opened.resolve(&Term::iri("http://x/p2"));
            let o3 = opened.resolve(&Term::iri("http://x/o3"));
            assert_eq!(s1, flat.resolve(&Term::iri("http://x/s1")));
            for pattern in [
                [None, None, None],
                [s1, None, None],
                [None, p2, None],
                [None, None, o3],
                [s1, p2, None],
                [None, p2, o3],
                [s1, p2, o3],
            ] {
                assert_eq!(
                    decoded(&opened, pattern),
                    decoded(&flat, pattern),
                    "{shards} shards, pattern {pattern:?}"
                );
                assert_eq!(
                    opened.scan(pattern).count() as u64,
                    flat.estimate(pattern),
                    "{shards} shards, pattern {pattern:?}: count"
                );
            }
        }
    }

    #[test]
    fn runs_load_lazily_per_access_pattern() {
        let g = graph(200);
        let tmp = TempDir::new("lazy");
        save_graph(tmp.path(), &g, 1, ShardBy::Subject).expect("save");
        let header = read_header(tmp.path()).expect("header");
        let stats = read_stats(tmp.path(), &header).expect("stats");
        let shard =
            DiskShardStore::open(tmp.path(), 0, &header.shards[0], stats[0].clone()).expect("open");
        assert!(
            (0..3).all(|i| !shard.run_loaded(i)),
            "open reads no run at all"
        );
        let p = 1u32; // any id; the scan route matters, not the hits
        shard.scan([None, Some(p), None]).count();
        assert!(shard.run_loaded(1), "P-bound scan loads the PSO run");
        assert!(
            !shard.run_loaded(0) && !shard.run_loaded(2),
            "only that one"
        );
        shard.scan([None, None, None]).count();
        assert!(shard.run_loaded(0), "full scan loads the SPO run");
    }

    #[test]
    fn estimates_fault_no_runs_on_a_cold_store() {
        let g = graph(300);
        let tmp = TempDir::new("cold-estimate");
        save_graph(tmp.path(), &g, 2, ShardBy::Subject).expect("save");
        let header = read_header(tmp.path()).expect("header");
        let stats = read_stats(tmp.path(), &header).expect("stats");
        let mut shards = Vec::new();
        for ((i, meta), s) in header.shards.iter().enumerate().zip(stats) {
            shards.push(DiskShardStore::open(tmp.path(), i, meta, s).expect("open"));
        }
        let opened = open_store(tmp.path()).expect("open");
        let s1 = opened.resolve(&Term::iri("http://x/s1"));
        let p1 = opened.resolve(&Term::iri("http://x/p1"));
        let o1 = opened.resolve(&Term::iri("http://x/o1"));
        // Every bound-position combination, on the sharded store and on
        // the bare shards: none may read a run.
        for pattern in [
            [None, None, None],
            [s1, None, None],
            [None, p1, None],
            [None, None, o1],
            [s1, p1, None],
            [s1, None, o1],
            [None, p1, o1],
            [s1, p1, o1],
        ] {
            opened.estimate(pattern);
            opened.stats().expect("disk store carries stats");
            for shard in &shards {
                shard.estimate(pattern);
            }
        }
        for shard in &shards {
            #[cfg(debug_assertions)]
            assert_eq!(
                shard.run_faults(),
                0,
                "estimation faulted a sorted run into memory"
            );
            assert!(
                (0..3).all(|i| !shard.run_loaded(i)),
                "estimation loaded a run"
            );
        }
        // Estimates stay sane: the full pattern matches everything.
        assert_eq!(opened.estimate([None, None, None]), g.len() as u64);
        assert_eq!(
            opened.estimate([None, p1, None]),
            opened.scan([None, p1, None]).count() as u64,
            "single-predicate estimates are exact from per-predicate stats"
        );
    }

    #[test]
    fn scan_chunks_cover_like_the_other_stores() {
        let g = graph(300);
        let tmp = TempDir::new("chunks");
        save_graph(tmp.path(), &g, 2, ShardBy::Subject).expect("save");
        let opened = open_store(tmp.path()).expect("open");
        let p1 = opened.resolve(&Term::iri("http://x/p1"));
        let s1 = opened.resolve(&Term::iri("http://x/s1"));
        for pattern in [[None, None, None], [None, p1, None], [s1, None, None]] {
            let sequential: Vec<IdTriple> = opened.scan(pattern).collect();
            for n in [1, 3, 8] {
                let chunks = opened.scan_chunks(pattern, n);
                let chunked: Vec<IdTriple> = chunks.iter().flat_map(|c| c.iter(pattern)).collect();
                assert_eq!(chunked, sequential, "pattern {pattern:?} n {n}");
            }
        }
    }

    #[test]
    fn missing_and_truncated_shard_files_fail_open_cleanly() {
        let g = graph(150);
        let tmp = TempDir::new("shard-missing");
        save_graph(tmp.path(), &g, 2, ShardBy::Subject).expect("save");
        // ShardedStore carries no Debug impl, so unwrap the error by hand.
        fn open_err(dir: &Path) -> SegmentError {
            match open_store(dir) {
                Err(e) => e,
                Ok(_) => panic!("open of a damaged directory must fail"),
            }
        }
        let shard1 = tmp.path().join(shard_file_name(1));
        let bytes = std::fs::read(&shard1).unwrap();
        std::fs::remove_file(&shard1).unwrap();
        let err = open_err(tmp.path());
        assert!(err.to_string().contains("missing shard file"), "{err}");
        std::fs::write(&shard1, &bytes[..bytes.len() - 12]).unwrap();
        let err = open_err(tmp.path());
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn post_open_run_corruption_panics_with_the_checksum_message() {
        let g = graph(150);
        let tmp = TempDir::new("run-corrupt");
        save_graph(tmp.path(), &g, 1, ShardBy::Subject).expect("save");
        let opened = open_store(tmp.path()).expect("open validates sizes only");
        // Corrupt a triple body *after* open: same size, wrong bytes.
        // Offset 6 sits inside the first (SPO) run, the one a full scan
        // reads.
        let shard0 = tmp.path().join(shard_file_name(0));
        let mut bytes = std::fs::read(&shard0).unwrap();
        bytes[6] ^= 0xff;
        std::fs::write(&shard0, &bytes).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            opened.scan([None, None, None]).count()
        }));
        let msg = match caught {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into()),
            Ok(_) => panic!("corrupted run must not scan"),
        };
        assert!(msg.contains("checksum"), "panic names the checksum: {msg}");
    }

    #[test]
    fn disk_backend_is_never_built_from_buckets() {
        let caught = std::panic::catch_unwind(|| {
            ShardedStore::from_graph(&graph(10), 2, ShardBy::Subject, ShardBackend::Disk)
        });
        assert!(caught.is_err(), "building disk shards in memory is a bug");
    }

    #[test]
    fn pso_partitioning_survives_the_roundtrip() {
        let g = graph(200);
        let tmp = TempDir::new("pso");
        save_graph(tmp.path(), &g, 4, ShardBy::PredicateSubject).expect("save");
        let opened = open_store(tmp.path()).expect("open");
        assert_eq!(opened.shard_by(), ShardBy::PredicateSubject);
        let flat = NativeStore::with_indexes(&g, IndexSelection::all());
        assert_eq!(
            decoded(&opened, [None, None, None]),
            decoded(&flat, [None, None, None])
        );
    }
}
