//! The sharded triple store: one logical [`TripleStore`] over N
//! hash-partitioned shards.
//!
//! At the top of the paper's scalability range (documents up to 25M
//! triples) a single store serializes exactly the phases the paper
//! times — parsing/loading, index construction, and full-document
//! scans. [`ShardedStore`] partitions the *store*: every triple is
//! routed by a hash of its partition key ([`ShardBy`]) to one of N
//! independent shard stores, so
//!
//! * **loading and index build fan out** — each shard sorts its own
//!   permutation indexes on its own thread (see
//!   [`ShardedStore::from_graph`] and the streaming channel loader in
//!   [`crate::load::sharded_store_from_reader`]);
//! * **scans parallelize across shards** — [`TripleStore::scan_chunks`]
//!   returns the concatenation of per-shard chunk lists, so the
//!   morsel-driven exchange upstream spreads workers over shards with
//!   zero evaluator changes;
//! * **point lookups route** — a pattern that binds the partition key
//!   touches exactly one shard ([`ShardedStore::route`]).
//!
//! ## Dictionary: shared, not per-shard
//!
//! All shards sit behind **one shared [`Dictionary`]** owned by the
//! `ShardedStore`; the shard stores carry empty dictionaries and operate
//! purely on ids. The alternative — per-shard dictionaries with a global
//! remap — would parallelize term interning too, but every cross-shard
//! operation (plan binding, join keys, result decoding, the exchange
//! merge) would then need an id translation layer, and the remap pass
//! itself is a serial barrier of the same order as interning. Interning
//! is a hash insert per term while index build is a sort per shard, so
//! the shared dictionary keeps the cheap part serial and fans out the
//! expensive part — and ids stay identical to an unsharded load of the
//! same document (first-seen order), which is what makes sharded and
//! unsharded stores directly comparable in tests.
//!
//! Scan order is deterministic: shard 0's triples first, then shard 1's,
//! …, each in its shard's store order. That order differs from an
//! unsharded store's (partitioning permutes the document), but it is
//! stable for a given (document, shard count, partition key), and
//! `scan_chunks` concatenates to exactly this order — the contract the
//! exchange merge relies on.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use sp2b_rdf::Graph;

use crate::dictionary::{Dictionary, Id, IdTriple};
use crate::mem::MemStore;
use crate::native::{IndexSelection, NativeStore};
use crate::stats::StoreStats;
use crate::traits::{debug_assert_chunks_cover, CacheStats, Pattern, ScanChunk, TripleStore};

/// The partition key of a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardBy {
    /// Hash the subject id. Point lookups with a bound subject route to
    /// one shard; SP²Bench subjects (articles, people, …) are numerous
    /// and near-uniform under the hash, so shards balance well.
    Subject,
    /// Hash (predicate, subject) — the PSO-flavoured key. Spreads the
    /// triples of one hot subject across shards (per-predicate), at the
    /// cost of routing only patterns that bind *both* positions.
    PredicateSubject,
}

impl ShardBy {
    /// The CLI spelling (`--shard-by subject|pso`).
    pub fn label(self) -> &'static str {
        match self {
            ShardBy::Subject => "subject",
            ShardBy::PredicateSubject => "pso",
        }
    }

    /// Parses a CLI label.
    pub fn from_label(s: &str) -> Option<ShardBy> {
        match s {
            "subject" => Some(ShardBy::Subject),
            "pso" => Some(ShardBy::PredicateSubject),
            _ => None,
        }
    }

    /// The shard owning an encoded triple, among `n` shards.
    #[inline]
    pub fn shard_of(self, triple: &IdTriple, n: usize) -> usize {
        (self.key_hash(triple[0], triple[1]) % n as u64) as usize
    }

    #[inline]
    fn key_hash(self, s: Id, p: Id) -> u64 {
        match self {
            ShardBy::Subject => mix64(s as u64),
            ShardBy::PredicateSubject => mix64(((p as u64) << 32) | s as u64),
        }
    }
}

impl std::fmt::Display for ShardBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// SplitMix64 finalizer: dictionary ids are dense small integers, so the
/// partition hash needs strong avalanche to spread consecutive ids over
/// shards (a modulo alone would stripe, not shard).
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What each shard is built as — the same two design points as the
/// unsharded stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackend {
    /// Hash-indexed [`MemStore`] shards (posting lists, no sorting).
    Mem,
    /// Index-backed [`NativeStore`] shards: each shard sorts its own
    /// permutation indexes, which is the part of loading that fans out.
    Native(IndexSelection),
    /// Lazily-read segment-file shards ([`crate::disk::DiskShardStore`]).
    /// Disk shards are never *built* from buckets — they are written by
    /// `sp2b save` and reopened by [`crate::disk::open_store`]; this
    /// variant exists so layouts and reports can name the backend.
    Disk,
}

impl ShardBackend {
    /// Short backend name for loading reports.
    pub fn label(self) -> &'static str {
        match self {
            ShardBackend::Mem => "mem",
            ShardBackend::Native(_) => "native",
            ShardBackend::Disk => "disk",
        }
    }
}

/// One logical store over N hash-partitioned shard stores sharing one
/// dictionary. See the module docs for the design; it implements
/// [`TripleStore`], so `into_shared()`, the `QueryEngine`, the exchange
/// and the HTTP server all work over it unchanged.
pub struct ShardedStore {
    dict: Dictionary,
    shard_by: ShardBy,
    shards: Vec<Box<dyn TripleStore>>,
    /// Wall time each shard spent building (index sort / posting-list
    /// inserts), for the per-shard loading report.
    build_times: Vec<Duration>,
    len: usize,
    /// Lazily merged per-shard statistics — `None` inside once computed
    /// means some shard holds no summary.
    stats: OnceLock<Option<StoreStats>>,
}

impl ShardedStore {
    /// Builds a sharded store from a graph: terms are interned into the
    /// shared dictionary in document order (ids identical to an
    /// unsharded load), triples are routed to per-shard buckets, and the
    /// shard stores build **in parallel** on scoped threads.
    pub fn from_graph(
        graph: &Graph,
        shards: usize,
        shard_by: ShardBy,
        backend: ShardBackend,
    ) -> ShardedStore {
        let n = shards.max(1);
        let mut dict = Dictionary::new();
        let mut buckets: Vec<Vec<IdTriple>> = (0..n).map(|_| Vec::new()).collect();
        for t in graph.iter() {
            let enc = dict.encode_triple(t);
            buckets[shard_by.shard_of(&enc, n)].push(enc);
        }
        Self::from_buckets(dict, shard_by, buckets, backend)
    }

    /// Builds shard stores from already-routed buckets, one scoped
    /// thread per shard (the index-build fan-out), then assembles the
    /// logical store. Shared by [`ShardedStore::from_graph`] and the
    /// streaming loader in [`crate::load`].
    pub(crate) fn from_buckets(
        dict: Dictionary,
        shard_by: ShardBy,
        buckets: Vec<Vec<IdTriple>>,
        backend: ShardBackend,
    ) -> ShardedStore {
        let built: Vec<(Box<dyn TripleStore>, Duration)> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| s.spawn(move || build_shard(backend, bucket)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build thread panicked"))
                .collect()
        });
        Self::assemble(dict, shard_by, built)
    }

    /// Assembles the logical store from built shards.
    pub(crate) fn assemble(
        dict: Dictionary,
        shard_by: ShardBy,
        built: Vec<(Box<dyn TripleStore>, Duration)>,
    ) -> ShardedStore {
        let mut shards = Vec::with_capacity(built.len());
        let mut build_times = Vec::with_capacity(built.len());
        for (shard, time) in built {
            shards.push(shard);
            build_times.push(time);
        }
        let len = shards.iter().map(|s| s.len()).sum();
        ShardedStore {
            dict,
            shard_by,
            shards,
            build_times,
            len,
            stats: OnceLock::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partition key.
    pub fn shard_by(&self) -> ShardBy {
        self.shard_by
    }

    /// Triple count per shard, in shard order (the balance report).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Per-shard build wall time (index sort / inserts), in shard order.
    pub fn shard_build_times(&self) -> &[Duration] {
        &self.build_times
    }

    /// The single shard a pattern resolves to, when it binds the whole
    /// partition key — `None` means the scan must visit every shard.
    fn route(&self, pattern: &Pattern) -> Option<usize> {
        let n = self.shards.len();
        match self.shard_by {
            ShardBy::Subject => {
                pattern[0].map(|s| (self.shard_by.key_hash(s, 0) % n as u64) as usize)
            }
            ShardBy::PredicateSubject => match (pattern[0], pattern[1]) {
                (Some(s), Some(p)) => Some((self.shard_by.key_hash(s, p) % n as u64) as usize),
                _ => None,
            },
        }
    }
}

/// Builds one shard store from its bucket, reporting the build time.
pub(crate) fn build_shard(
    backend: ShardBackend,
    triples: Vec<IdTriple>,
) -> (Box<dyn TripleStore>, Duration) {
    let t0 = Instant::now();
    let store: Box<dyn TripleStore> = match backend {
        ShardBackend::Mem => {
            let mut store = MemStore::new();
            for t in triples {
                store.insert_encoded(t);
            }
            Box::new(store)
        }
        // The shard's own dictionary stays empty: ids live in the shared
        // dictionary the ShardedStore owns.
        ShardBackend::Native(selection) => Box::new(NativeStore::from_encoded(
            Dictionary::new(),
            triples,
            selection,
        )),
        ShardBackend::Disk => unreachable!(
            "disk shards are opened from saved segments (crate::disk::open_store), \
             not built from buckets"
        ),
    };
    (store, t0.elapsed())
}

impl TripleStore for ShardedStore {
    fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn len(&self) -> usize {
        self.len
    }

    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        match self.route(&pattern) {
            Some(shard) => self.shards[shard].scan(pattern),
            None => Box::new(self.shards.iter().flat_map(move |s| s.scan(pattern))),
        }
    }

    /// Per-shard chunk lists, concatenated in shard order — so the
    /// chunks' concatenation equals [`ShardedStore::scan`]'s order, and a
    /// morsel driver naturally spreads workers across shards. The `n`
    /// budget is apportioned over shards by their estimates (largest
    /// remainder, deterministic); every shard is asked for at least one
    /// chunk so coverage never depends on estimate quality, which can
    /// push the chunk count slightly past `n` (at most one extra chunk
    /// per shard).
    fn scan_chunks(&self, pattern: Pattern, n: usize) -> Vec<ScanChunk<'_>> {
        let out = if let Some(shard) = self.route(&pattern) {
            self.shards[shard].scan_chunks(pattern, n)
        } else {
            let n = n.max(1);
            let ests: Vec<u64> = self.shards.iter().map(|s| s.estimate(pattern)).collect();
            let total: u128 = ests.iter().map(|&e| e as u128).sum();
            let shares: Vec<usize> = if total == 0 {
                vec![1; self.shards.len()]
            } else {
                apportion(n, &ests, total)
            };
            let mut out = Vec::new();
            for (shard, share) in self.shards.iter().zip(shares) {
                out.extend(shard.scan_chunks(pattern, share.max(1)));
            }
            out
        };
        debug_assert_chunks_cover(self, pattern, &out);
        out
    }

    /// Shard-aware estimate: routed patterns ask their one shard;
    /// everything else sums across shards. The sum of exact per-shard
    /// counts is exact, so the optimizer's cost model sees the same
    /// numbers as over an unsharded store.
    fn estimate(&self, pattern: Pattern) -> u64 {
        match self.route(&pattern) {
            Some(shard) => self.shards[shard].estimate(pattern),
            None => self.shards.iter().map(|s| s.estimate(pattern)).sum(),
        }
    }

    fn has_exact_estimates(&self) -> bool {
        self.shards.iter().all(|s| s.has_exact_estimates())
    }

    /// Per-shard summaries merged once, lazily — stats sum across shards
    /// exactly like estimates do (see [`StoreStats::merge`] for which
    /// merged counts stay exact under which partition key).
    fn stats(&self) -> Option<&StoreStats> {
        self.stats
            .get_or_init(|| {
                let mut merged = StoreStats::default();
                for shard in &self.shards {
                    merged.merge(shard.stats()?);
                }
                Some(merged)
            })
            .as_ref()
    }

    /// Disk shards share one store-wide block cache, so the first
    /// shard that has one answers for all of them (summing would count
    /// the same cache once per shard).
    fn cache_stats(&self) -> Option<CacheStats> {
        self.shards.iter().find_map(|s| s.cache_stats())
    }

    fn contains(&self, pattern: Pattern) -> bool {
        match self.route(&pattern) {
            Some(shard) => self.shards[shard].contains(pattern),
            None => self.shards.iter().any(|s| s.contains(pattern)),
        }
    }
}

/// Largest-remainder apportionment of `n` chunks over shards by
/// estimate. Deterministic: quotas floor, the leftover goes to the
/// largest remainders (ties to the lower shard index).
fn apportion(n: usize, ests: &[u64], total: u128) -> Vec<usize> {
    let mut shares: Vec<usize> = ests
        .iter()
        .map(|&e| ((n as u128 * e as u128) / total) as usize)
        .collect();
    let assigned: usize = shares.iter().sum();
    let mut by_remainder: Vec<usize> = (0..ests.len()).collect();
    by_remainder.sort_by_key(|&i| (std::cmp::Reverse((n as u128 * ests[i] as u128) % total), i));
    for &i in by_remainder.iter().take(n.saturating_sub(assigned)) {
        shares[i] += 1;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Iri, Subject, Term};

    fn graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add(
                Subject::iri(format!("http://x/s{}", i % 37)),
                Iri::new(format!("http://x/p{}", i % 5)),
                Term::iri(format!("http://x/o{}", i % 11)),
            );
        }
        g
    }

    fn decoded(store: &dyn TripleStore, pattern: Pattern) -> Vec<String> {
        let mut v: Vec<String> = store
            .scan(pattern)
            .map(|t| {
                format!(
                    "{} {} {}",
                    store.dictionary().decode(t[0]),
                    store.dictionary().decode(t[1]),
                    store.dictionary().decode(t[2])
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn sharded_scans_agree_with_unsharded_for_all_access_patterns() {
        let g = graph(200);
        let flat = NativeStore::from_graph(&g);
        for shard_by in [ShardBy::Subject, ShardBy::PredicateSubject] {
            for shards in [1, 2, 3, 8] {
                let sharded = ShardedStore::from_graph(
                    &g,
                    shards,
                    shard_by,
                    ShardBackend::Native(IndexSelection::all()),
                );
                assert_eq!(sharded.len(), flat.len());
                let s1 = sharded.resolve(&Term::iri("http://x/s1"));
                let p2 = sharded.resolve(&Term::iri("http://x/p2"));
                let o3 = sharded.resolve(&Term::iri("http://x/o3"));
                for pattern in [
                    [None, None, None],
                    [s1, None, None],
                    [None, p2, None],
                    [None, None, o3],
                    [s1, p2, None],
                    [s1, p2, o3],
                    [None, p2, o3],
                ] {
                    // Ids are identical (shared dictionary interned in
                    // document order), so raw patterns transfer.
                    assert_eq!(
                        decoded(&sharded, pattern),
                        decoded(&flat, pattern),
                        "{shard_by} × {shards} shards, pattern {pattern:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mem_backend_agrees_too() {
        let g = graph(120);
        let flat = MemStore::from_graph(&g);
        let sharded = ShardedStore::from_graph(&g, 4, ShardBy::Subject, ShardBackend::Mem);
        assert_eq!(sharded.len(), flat.len());
        let p0 = sharded.resolve(&Term::iri("http://x/p0"));
        for pattern in [[None, None, None], [None, p0, None]] {
            assert_eq!(decoded(&sharded, pattern), decoded(&flat, pattern));
        }
        assert!(!sharded.has_exact_estimates(), "mem shards are heuristic");
    }

    #[test]
    fn scan_chunks_concatenate_to_scan_order() {
        let g = graph(300);
        let s = ShardedStore::from_graph(
            &g,
            4,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        );
        let p1 = s.resolve(&Term::iri("http://x/p1"));
        let s1 = s.resolve(&Term::iri("http://x/s1"));
        for pattern in [[None, None, None], [None, p1, None], [s1, None, None]] {
            let sequential: Vec<IdTriple> = s.scan(pattern).collect();
            for n in [1, 2, 5, 16, 64] {
                let chunks = s.scan_chunks(pattern, n);
                let chunked: Vec<IdTriple> = chunks.iter().flat_map(|c| c.iter(pattern)).collect();
                assert_eq!(chunked, sequential, "pattern {pattern:?} n {n}");
                assert!(
                    chunks.len() <= n + s.shard_count(),
                    "chunk overshoot is bounded by one per shard"
                );
            }
        }
    }

    #[test]
    fn scan_chunks_are_deterministic() {
        let g = graph(300);
        let s = ShardedStore::from_graph(
            &g,
            3,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        );
        let a: Vec<usize> = s
            .scan_chunks([None, None, None], 12)
            .iter()
            .map(|c| c.len())
            .collect();
        let b: Vec<usize> = s
            .scan_chunks([None, None, None], 12)
            .iter()
            .map(|c| c.len())
            .collect();
        assert_eq!(a, b, "same pattern and n must chunk identically");
    }

    #[test]
    fn bound_key_patterns_route_to_one_shard() {
        let g = graph(200);
        let s = ShardedStore::from_graph(
            &g,
            4,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        );
        let sub = s.resolve(&Term::iri("http://x/s5")).unwrap();
        let shard = s.route(&[Some(sub), None, None]).expect("subject routes");
        // The owning shard answers the whole pattern…
        assert_eq!(
            s.shards[shard].scan([Some(sub), None, None]).count(),
            s.scan([Some(sub), None, None]).count()
        );
        // …and no other shard holds any of its triples.
        for (i, other) in s.shards.iter().enumerate() {
            if i != shard {
                assert_eq!(other.scan([Some(sub), None, None]).count(), 0);
            }
        }
        // PSO sharding routes only fully-bound keys.
        let pso = ShardedStore::from_graph(
            &g,
            4,
            ShardBy::PredicateSubject,
            ShardBackend::Native(IndexSelection::all()),
        );
        assert!(pso.route(&[Some(sub), None, None]).is_none());
        let p = pso.resolve(&Term::iri("http://x/p1")).unwrap();
        assert!(pso.route(&[Some(sub), Some(p), None]).is_some());
    }

    #[test]
    fn estimates_sum_across_shards_and_stay_exact() {
        let g = graph(250);
        let flat = NativeStore::from_graph(&g);
        let s = ShardedStore::from_graph(
            &g,
            4,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        );
        assert!(s.has_exact_estimates());
        let p1 = s.resolve(&Term::iri("http://x/p1"));
        for pattern in [[None, None, None], [None, p1, None]] {
            assert_eq!(s.estimate(pattern), flat.estimate(pattern));
            assert_eq!(s.estimate(pattern), s.scan(pattern).count() as u64);
        }
    }

    #[test]
    fn ids_match_the_unsharded_load_order() {
        // The shared dictionary interns in document order regardless of
        // the shard count, so ids — and with them bound plans — transfer
        // between sharded and unsharded stores of the same document.
        let g = graph(100);
        let flat = NativeStore::from_graph(&g);
        let sharded = ShardedStore::from_graph(
            &g,
            8,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        );
        for term in [
            Term::iri("http://x/s3"),
            Term::iri("http://x/p4"),
            Term::iri("http://x/o9"),
        ] {
            assert_eq!(sharded.resolve(&term), flat.resolve(&term));
        }
        assert_eq!(sharded.dictionary().len(), flat.dictionary().len());
    }

    #[test]
    fn shard_metadata_is_reported() {
        let g = graph(200);
        let s = ShardedStore::from_graph(
            &g,
            4,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        );
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_build_times().len(), 4);
        assert_eq!(s.shard_lens().iter().sum::<usize>(), s.len());
        assert_eq!(s.shard_by(), ShardBy::Subject);
    }

    #[test]
    fn empty_and_single_shard_behave() {
        let s = ShardedStore::from_graph(
            &Graph::new(),
            4,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all()),
        );
        assert!(s.is_empty());
        assert!(s.scan_chunks([None, None, None], 8).is_empty());
        let g = graph(50);
        let one = ShardedStore::from_graph(&g, 1, ShardBy::Subject, ShardBackend::Mem);
        assert_eq!(one.shard_count(), 1);
        assert_eq!(one.len(), g.len());
    }

    #[test]
    fn apportion_is_proportional_and_complete() {
        assert_eq!(apportion(8, &[100, 100, 0], 200), vec![4, 4, 0]);
        let shares = apportion(7, &[5, 3, 2], 10);
        assert_eq!(shares.iter().sum::<usize>(), 7);
        assert!(
            shares[0] >= shares[1] && shares[1] >= shares[2],
            "{shares:?}"
        );
    }

    #[test]
    fn labels_roundtrip() {
        for by in [ShardBy::Subject, ShardBy::PredicateSubject] {
            assert_eq!(ShardBy::from_label(by.label()), Some(by));
        }
        assert_eq!(ShardBy::from_label("nope"), None);
    }
}
