//! Load-time store statistics driving cost-based query planning.
//!
//! A [`StoreStats`] summary is collected once per shard while a store is
//! built (or decoded in O(bytes) from the segment's stats section) and
//! answers the planner's cardinality questions without touching triple
//! data:
//!
//! * per-predicate triple counts plus distinct-subject / distinct-object
//!   counts — the classic distinct-count ratios behind bound-variable
//!   join selectivity;
//! * characteristic sets (the distinct *sets* of predicates occurring on
//!   a subject, with subject counts and per-predicate triple counts) —
//!   the star-shape estimator of Neumann & Moerkotte, which is exactly
//!   the shape that dominates real SPARQL logs (Bonifati et al.).
//!
//! Stats are collected **per shard** and [`StoreStats::merge`]d, so a
//! sharded store's summary sums the same way its estimates do. Under
//! subject sharding the merged subject-side numbers stay exact (a
//! subject lives in exactly one shard); predicate/object distinct counts
//! are upper bounds after a merge, which is the safe direction for a
//! planner (it never underestimates a fan-out into a cross product).

use crate::dictionary::{Id, IdTriple};
use crate::hash::FxHashMap;
use crate::traits::Pattern;

/// Distinct characteristic sets beyond which collection is abandoned:
/// a corpus whose subjects are near-unique in their predicate sets gains
/// nothing from CS estimation, and the planner falls back to
/// distinct-count ratios. Keeps the summary O(small) regardless of data.
pub const MAX_CHARACTERISTIC_SETS: usize = 4096;

/// Per-predicate summary: triple count and distinct subject/object
/// counts, the inputs to distinct-count-ratio selectivity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateStats {
    /// The predicate's dictionary id.
    pub predicate: Id,
    /// Triples carrying this predicate.
    pub triples: u64,
    /// Distinct subjects among those triples.
    pub distinct_subjects: u64,
    /// Distinct objects among those triples.
    pub distinct_objects: u64,
}

/// One characteristic set: the (sorted) set of predicates some group of
/// subjects shares, how many subjects share it, and how many triples
/// each predicate contributes across those subjects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharacteristicSet {
    /// The predicate ids of the set, sorted ascending.
    pub predicates: Vec<Id>,
    /// Number of subjects whose predicate set is exactly this set.
    pub subjects: u64,
    /// Triple counts per predicate, parallel to `predicates`.
    pub pred_triples: Vec<u64>,
}

/// The load-time statistics summary of one store (or one shard).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total triples.
    pub triples: u64,
    /// Distinct subjects across all triples.
    pub distinct_subjects: u64,
    /// Distinct objects across all triples.
    pub distinct_objects: u64,
    /// Per-predicate summaries, sorted by predicate id.
    pub predicates: Vec<PredicateStats>,
    /// Characteristic sets sorted by predicate-set key; empty when the
    /// data exceeded [`MAX_CHARACTERISTIC_SETS`] distinct sets (or when
    /// merged stats overflowed the cap).
    pub characteristic_sets: Vec<CharacteristicSet>,
}

impl StoreStats {
    /// Collects the summary from a slice of encoded triples. Three sorts
    /// of one scratch copy — O(n log n), run once at load time.
    pub fn from_triples(triples: &[IdTriple]) -> StoreStats {
        let mut stats = StoreStats {
            triples: triples.len() as u64,
            ..StoreStats::default()
        };
        if triples.is_empty() {
            return stats;
        }
        let mut scratch: Vec<IdTriple> = triples.to_vec();

        // Pass 1 — (s, p): distinct subjects and characteristic sets.
        scratch.sort_unstable_by_key(|t| (t[0], t[1]));
        let mut sets: FxHashMap<Vec<Id>, (u64, Vec<u64>)> = FxHashMap::default();
        let mut overflowed = false;
        let mut i = 0;
        while i < scratch.len() {
            let subject = scratch[i][0];
            let mut preds: Vec<Id> = Vec::new();
            let mut counts: Vec<u64> = Vec::new();
            while i < scratch.len() && scratch[i][0] == subject {
                let p = scratch[i][1];
                if preds.last() == Some(&p) {
                    *counts.last_mut().expect("parallel to preds") += 1;
                } else {
                    preds.push(p);
                    counts.push(1);
                }
                i += 1;
            }
            stats.distinct_subjects += 1;
            if overflowed {
                continue;
            }
            if let Some((subjects, totals)) = sets.get_mut(&preds) {
                *subjects += 1;
                for (t, c) in totals.iter_mut().zip(&counts) {
                    *t += c;
                }
            } else if sets.len() >= MAX_CHARACTERISTIC_SETS {
                overflowed = true;
                sets.clear();
            } else {
                sets.insert(preds, (1, counts));
            }
        }
        let mut characteristic_sets: Vec<CharacteristicSet> = sets
            .into_iter()
            .map(|(predicates, (subjects, pred_triples))| CharacteristicSet {
                predicates,
                subjects,
                pred_triples,
            })
            .collect();
        characteristic_sets.sort_unstable_by(|a, b| a.predicates.cmp(&b.predicates));
        stats.characteristic_sets = characteristic_sets;

        // Pass 2 — (p, s): per-predicate triple and distinct-subject
        // counts.
        scratch.sort_unstable_by_key(|t| (t[1], t[0]));
        let mut i = 0;
        while i < scratch.len() {
            let predicate = scratch[i][1];
            let mut count = 0u64;
            let mut subjects = 0u64;
            let mut last_subject = None;
            while i < scratch.len() && scratch[i][1] == predicate {
                count += 1;
                if last_subject != Some(scratch[i][0]) {
                    subjects += 1;
                    last_subject = Some(scratch[i][0]);
                }
                i += 1;
            }
            stats.predicates.push(PredicateStats {
                predicate,
                triples: count,
                distinct_subjects: subjects,
                distinct_objects: 0, // filled by pass 3
            });
        }

        // Pass 3 — (p, o): per-predicate distinct objects; global
        // distinct objects from a dedicated object sort.
        scratch.sort_unstable_by_key(|t| (t[1], t[2]));
        let mut i = 0;
        let mut pred_idx = 0;
        while i < scratch.len() {
            let predicate = scratch[i][1];
            let mut objects = 0u64;
            let mut last_object = None;
            while i < scratch.len() && scratch[i][1] == predicate {
                if last_object != Some(scratch[i][2]) {
                    objects += 1;
                    last_object = Some(scratch[i][2]);
                }
                i += 1;
            }
            debug_assert_eq!(stats.predicates[pred_idx].predicate, predicate);
            stats.predicates[pred_idx].distinct_objects = objects;
            pred_idx += 1;
        }
        let mut objects: Vec<Id> = triples.iter().map(|t| t[2]).collect();
        objects.sort_unstable();
        objects.dedup();
        stats.distinct_objects = objects.len() as u64;
        stats
    }

    /// Folds another summary (typically of a sibling shard) into this
    /// one. Triple counts sum exactly; distinct counts sum into upper
    /// bounds (exact on the subject side under subject sharding, where
    /// no subject spans shards). Characteristic sets merge by set key;
    /// if the union exceeds [`MAX_CHARACTERISTIC_SETS`] the merged
    /// summary drops them and the planner falls back to ratios.
    pub fn merge(&mut self, other: &StoreStats) {
        self.triples += other.triples;
        self.distinct_subjects += other.distinct_subjects;
        self.distinct_objects += other.distinct_objects;
        let mut merged: Vec<PredicateStats> =
            Vec::with_capacity(self.predicates.len() + other.predicates.len());
        let (mut a, mut b) = (self.predicates.iter().peekable(), other.predicates.iter());
        let mut next_b = b.next();
        while let Some(pa) = a.peek() {
            match next_b {
                Some(pb) if pb.predicate < pa.predicate => {
                    merged.push(pb.clone());
                    next_b = b.next();
                }
                Some(pb) if pb.predicate == pa.predicate => {
                    let pa = a.next().expect("peeked");
                    merged.push(PredicateStats {
                        predicate: pa.predicate,
                        triples: pa.triples + pb.triples,
                        distinct_subjects: pa.distinct_subjects + pb.distinct_subjects,
                        distinct_objects: pa.distinct_objects + pb.distinct_objects,
                    });
                    next_b = b.next();
                }
                _ => merged.push(a.next().expect("peeked").clone()),
            }
        }
        while let Some(pb) = next_b {
            merged.push(pb.clone());
            next_b = b.next();
        }
        self.predicates = merged;

        if self.characteristic_sets.is_empty() && self.triples > other.triples {
            // This summary already overflowed: stay overflowed.
            return;
        }
        if other.characteristic_sets.is_empty() && other.triples > 0 {
            // The other summary overflowed: the union is unknowable.
            self.characteristic_sets.clear();
            return;
        }
        let mut sets: FxHashMap<Vec<Id>, (u64, Vec<u64>)> = FxHashMap::default();
        for cs in self
            .characteristic_sets
            .drain(..)
            .chain(other.characteristic_sets.iter().cloned())
        {
            if let Some((subjects, totals)) = sets.get_mut(&cs.predicates) {
                *subjects += cs.subjects;
                for (t, c) in totals.iter_mut().zip(&cs.pred_triples) {
                    *t += c;
                }
            } else {
                sets.insert(cs.predicates, (cs.subjects, cs.pred_triples));
            }
        }
        if sets.len() > MAX_CHARACTERISTIC_SETS {
            self.characteristic_sets = Vec::new();
            return;
        }
        let mut merged: Vec<CharacteristicSet> = sets
            .into_iter()
            .map(|(predicates, (subjects, pred_triples))| CharacteristicSet {
                predicates,
                subjects,
                pred_triples,
            })
            .collect();
        merged.sort_unstable_by(|a, b| a.predicates.cmp(&b.predicates));
        self.characteristic_sets = merged;
    }

    /// The per-predicate summary for `p`, if any triple carries it.
    pub fn predicate(&self, p: Id) -> Option<&PredicateStats> {
        self.predicates
            .binary_search_by_key(&p, |ps| ps.predicate)
            .ok()
            .map(|i| &self.predicates[i])
    }

    /// True when characteristic sets were collected (not overflowed).
    pub fn has_characteristic_sets(&self) -> bool {
        !self.characteristic_sets.is_empty()
    }

    /// Subjects whose predicate set contains every predicate in `preds`
    /// (sorted). Zero when `preds` is empty or CS were not collected.
    pub fn subjects_with_predicates(&self, preds: &[Id]) -> u64 {
        if preds.is_empty() {
            return 0;
        }
        self.characteristic_sets
            .iter()
            .filter(|cs| is_subset(preds, &cs.predicates))
            .map(|cs| cs.subjects)
            .sum()
    }

    /// Triples of predicate `next` on subjects whose predicate set
    /// contains every predicate in `preds` **and** `next` — the star-step
    /// output estimate: dividing by
    /// [`StoreStats::subjects_with_predicates`]`(preds)` gives the
    /// per-subject fan-out of extending the star with `next`.
    pub fn star_triples(&self, preds: &[Id], next: Id) -> u64 {
        self.characteristic_sets
            .iter()
            .filter(|cs| is_subset(preds, &cs.predicates))
            .filter_map(|cs| {
                let i = cs.predicates.binary_search(&next).ok()?;
                Some(cs.pred_triples[i])
            })
            .sum()
    }

    /// Cardinality estimate for `pattern` from the summary alone — no
    /// triple data, no index: the cold-path-free estimator the disk
    /// store answers planning queries with. Bound-position ratios; a
    /// fully bound pattern estimates 1 (0 if the predicate is unknown).
    pub fn estimate_pattern(&self, pattern: Pattern) -> u64 {
        let [s, p, o] = pattern;
        let pred = p.map(|p| self.predicate(p));
        if let Some(None) = pred {
            return 0; // bound predicate that no triple carries
        }
        match (s, pred.flatten(), o) {
            (None, None, None) => self.triples,
            (None, Some(ps), None) => ps.triples,
            (Some(_), None, None) => ratio(self.triples, self.distinct_subjects),
            (None, None, Some(_)) => ratio(self.triples, self.distinct_objects),
            (Some(_), Some(ps), None) => ratio(ps.triples, ps.distinct_subjects),
            (None, Some(ps), Some(_)) => ratio(ps.triples, ps.distinct_objects),
            (Some(_), None, Some(_)) => ratio(self.triples, self.distinct_subjects)
                .min(ratio(self.triples, self.distinct_objects)),
            (Some(_), Some(_), Some(_)) => 1,
        }
    }

    /// Serializes the summary (little-endian, length-prefixed) for the
    /// segment's stats section.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.triples.to_le_bytes());
        out.extend_from_slice(&self.distinct_subjects.to_le_bytes());
        out.extend_from_slice(&self.distinct_objects.to_le_bytes());
        out.extend_from_slice(&(self.predicates.len() as u32).to_le_bytes());
        for ps in &self.predicates {
            out.extend_from_slice(&ps.predicate.to_le_bytes());
            out.extend_from_slice(&ps.triples.to_le_bytes());
            out.extend_from_slice(&ps.distinct_subjects.to_le_bytes());
            out.extend_from_slice(&ps.distinct_objects.to_le_bytes());
        }
        out.extend_from_slice(&(self.characteristic_sets.len() as u32).to_le_bytes());
        for cs in &self.characteristic_sets {
            out.extend_from_slice(&(cs.predicates.len() as u32).to_le_bytes());
            out.extend_from_slice(&cs.subjects.to_le_bytes());
            for (p, t) in cs.predicates.iter().zip(&cs.pred_triples) {
                out.extend_from_slice(&p.to_le_bytes());
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a summary written by [`StoreStats::encode`],
    /// consuming from the front of `bytes` and returning the remainder.
    pub fn decode(bytes: &[u8]) -> Result<(StoreStats, &[u8]), String> {
        let mut cur = Reader { bytes };
        let triples = cur.u64()?;
        let distinct_subjects = cur.u64()?;
        let distinct_objects = cur.u64()?;
        let n_preds = cur.u32()? as usize;
        let mut predicates = Vec::with_capacity(n_preds.min(1 << 16));
        for _ in 0..n_preds {
            predicates.push(PredicateStats {
                predicate: cur.u32()?,
                triples: cur.u64()?,
                distinct_subjects: cur.u64()?,
                distinct_objects: cur.u64()?,
            });
        }
        let n_sets = cur.u32()? as usize;
        if n_sets > MAX_CHARACTERISTIC_SETS {
            return Err(format!(
                "stats section corrupt: {n_sets} characteristic sets exceeds the cap"
            ));
        }
        let mut characteristic_sets = Vec::with_capacity(n_sets);
        for _ in 0..n_sets {
            let n = cur.u32()? as usize;
            let subjects = cur.u64()?;
            let mut preds = Vec::with_capacity(n.min(1 << 16));
            let mut counts = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                preds.push(cur.u32()?);
                counts.push(cur.u64()?);
            }
            characteristic_sets.push(CharacteristicSet {
                predicates: preds,
                subjects,
                pred_triples: counts,
            });
        }
        Ok((
            StoreStats {
                triples,
                distinct_subjects,
                distinct_objects,
                predicates,
                characteristic_sets,
            },
            cur.bytes,
        ))
    }
}

/// `triples / distinct`, at least 1 when any triple exists.
fn ratio(triples: u64, distinct: u64) -> u64 {
    if triples == 0 {
        0
    } else {
        (triples / distinct.max(1)).max(1)
    }
}

/// Is sorted `needle` a subset of sorted `haystack`?
fn is_subset(needle: &[Id], haystack: &[Id]) -> bool {
    let mut hay = haystack.iter();
    'outer: for n in needle {
        for h in hay.by_ref() {
            match h.cmp(n) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Minimal little-endian front reader for [`StoreStats::decode`].
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() < n {
            return Err("stats section truncated".into());
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<IdTriple> {
        // Subjects 1, 2 carry {10, 11}; subject 3 carries {10} twice.
        vec![
            [1, 10, 100],
            [1, 11, 101],
            [2, 10, 100],
            [2, 11, 102],
            [3, 10, 103],
            [3, 10, 104],
        ]
    }

    #[test]
    fn collects_predicate_and_subject_counts() {
        let s = StoreStats::from_triples(&sample());
        assert_eq!(s.triples, 6);
        assert_eq!(s.distinct_subjects, 3);
        assert_eq!(s.distinct_objects, 5);
        let p10 = s.predicate(10).expect("p10");
        assert_eq!(
            (p10.triples, p10.distinct_subjects, p10.distinct_objects),
            (4, 3, 3)
        );
        let p11 = s.predicate(11).expect("p11");
        assert_eq!(
            (p11.triples, p11.distinct_subjects, p11.distinct_objects),
            (2, 2, 2)
        );
        assert!(s.predicate(99).is_none());
    }

    #[test]
    fn collects_characteristic_sets() {
        let s = StoreStats::from_triples(&sample());
        assert!(s.has_characteristic_sets());
        assert_eq!(s.characteristic_sets.len(), 2);
        // {10}: subject 3, two triples of predicate 10.
        assert_eq!(s.subjects_with_predicates(&[10]), 3);
        assert_eq!(s.subjects_with_predicates(&[10, 11]), 2);
        assert_eq!(s.subjects_with_predicates(&[11]), 2);
        assert_eq!(s.star_triples(&[10], 11), 2);
        assert_eq!(s.star_triples(&[], 10), 4);
        assert_eq!(s.subjects_with_predicates(&[99]), 0);
    }

    #[test]
    fn estimates_patterns_from_the_summary() {
        let s = StoreStats::from_triples(&sample());
        assert_eq!(s.estimate_pattern([None, None, None]), 6);
        assert_eq!(s.estimate_pattern([None, Some(10), None]), 4);
        assert_eq!(s.estimate_pattern([None, Some(99), None]), 0);
        assert_eq!(s.estimate_pattern([Some(1), None, None]), 2); // 6/3
        assert_eq!(s.estimate_pattern([None, None, Some(100)]), 1); // 6/5
        assert_eq!(s.estimate_pattern([Some(1), Some(10), None]), 1); // 4/3
        assert_eq!(s.estimate_pattern([None, Some(10), Some(100)]), 1);
        assert_eq!(s.estimate_pattern([Some(1), Some(10), Some(100)]), 1);
        assert_eq!(s.estimate_pattern([Some(1), Some(99), Some(100)]), 0);
    }

    #[test]
    fn merge_sums_counts_and_sets() {
        let mut a = StoreStats::from_triples(&sample()[..3]);
        let b = StoreStats::from_triples(&sample()[3..]);
        a.merge(&b);
        let whole = StoreStats::from_triples(&sample());
        assert_eq!(a.triples, whole.triples);
        // Subject 2 spans the split, so subject-side distincts overcount
        // by one — merged counts are upper bounds.
        assert_eq!(a.distinct_subjects, 4);
        let p10 = a.predicate(10).expect("p10");
        assert_eq!(p10.triples, 4);
        // Split subject 2's set {10} + {11} instead of {10,11}.
        assert_eq!(a.subjects_with_predicates(&[10]), 3);
    }

    #[test]
    fn merge_of_disjoint_subjects_is_exact_on_the_subject_side() {
        let all = sample();
        let mut a = StoreStats::from_triples(&all[..2]); // subject 1
        let b = StoreStats::from_triples(&all[2..]); // subjects 2, 3
        a.merge(&b);
        let whole = StoreStats::from_triples(&all);
        // No subject spans the split, so everything keyed by subject is
        // exact; object distincts overcount (object 100 is in both
        // halves) — the documented upper-bound direction.
        assert_eq!(a.triples, whole.triples);
        assert_eq!(a.distinct_subjects, whole.distinct_subjects);
        assert_eq!(a.characteristic_sets, whole.characteristic_sets);
        for p in [10, 11] {
            let (ma, mw) = (a.predicate(p).unwrap(), whole.predicate(p).unwrap());
            assert_eq!(ma.triples, mw.triples);
            assert_eq!(ma.distinct_subjects, mw.distinct_subjects);
            assert!(ma.distinct_objects >= mw.distinct_objects);
        }
        assert!(a.distinct_objects >= whole.distinct_objects);
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = StoreStats::from_triples(&sample());
        let bytes = s.encode();
        let (back, rest) = StoreStats::decode(&bytes).expect("decode");
        assert!(rest.is_empty());
        assert_eq!(back, s);

        let empty = StoreStats::from_triples(&[]);
        let empty_bytes = empty.encode();
        let (back, rest) = StoreStats::decode(&empty_bytes).expect("decode empty");
        assert!(rest.is_empty());
        assert_eq!(back, empty);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = StoreStats::from_triples(&sample()).encode();
        for cut in [0, 8, bytes.len() - 1] {
            assert!(StoreStats::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn overflow_drops_characteristic_sets() {
        // Every subject gets a unique predicate set — far over the cap.
        let triples: Vec<IdTriple> = (0..(MAX_CHARACTERISTIC_SETS as u32 + 8))
            .flat_map(|i| [[i, 2 * i, 1], [i, 2 * i + 1, 1]])
            .collect();
        let s = StoreStats::from_triples(&triples);
        assert!(!s.has_characteristic_sets());
        assert_eq!(s.triples, triples.len() as u64);
        assert_eq!(s.distinct_subjects, MAX_CHARACTERISTIC_SETS as u64 + 8);
    }
}
