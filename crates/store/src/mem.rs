//! The hash-indexed in-memory store.
//!
//! Models the paper's "in-memory engines" (ARQ/Jena, Sesame-Memory):
//! the document lives as a flat triple list plus per-term **hash adjacency
//! lists** for each position (Jena's memory model keeps exactly such S/P/O
//! hash indexes). Loading is cheap (hash inserts, no sorting) and pattern
//! scans walk the shortest applicable posting list with residual
//! filtering. Unlike [`crate::NativeStore`] there are no sorted range
//! indexes and no exact statistics — cardinality estimates are posting-
//! list heuristics, which is precisely the gap the `native-opt`
//! configuration's cost-based reordering exploits.

use sp2b_rdf::{Graph, Triple};

use std::sync::OnceLock;

use crate::dictionary::{Dictionary, Id, IdTriple};
use crate::hash::FxHashMap;
use crate::stats::StoreStats;
use crate::traits::{
    debug_assert_chunks_cover, matches, split_ranges, Pattern, ScanChunk, TripleStore,
};

/// Posting-list walks for multi-bound estimates are capped at this many
/// candidates; longer lists fall back to the list-length upper bound so
/// [`MemStore::estimate`] stays cheap for the optimizer's repeated probes.
const EXACT_ESTIMATE_CAP: usize = 1 << 10;

/// Posting lists for one triple position.
#[derive(Debug, Default)]
struct PositionIndex {
    lists: FxHashMap<Id, Vec<u32>>,
}

impl PositionIndex {
    fn push(&mut self, id: Id, row: u32) {
        self.lists.entry(id).or_default().push(row);
    }

    fn get(&self, id: Id) -> &[u32] {
        self.lists.get(&id).map_or(&[], Vec::as_slice)
    }
}

/// In-memory store with hash adjacency lists per position.
#[derive(Debug, Default)]
pub struct MemStore {
    dict: Dictionary,
    triples: Vec<IdTriple>,
    by_subject: PositionIndex,
    by_predicate: PositionIndex,
    by_object: PositionIndex,
    stats: OnceLock<StoreStats>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Loads every triple of a graph.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut store = MemStore::new();
        store.extend(graph.iter());
        store
    }

    /// Inserts one triple.
    pub fn insert(&mut self, triple: &Triple) {
        let t = self.dict.encode_triple(triple);
        self.insert_encoded(t);
    }

    /// Inserts an already-encoded triple without touching this store's
    /// dictionary — the shard-build path, where ids live in the shared
    /// dictionary owned by the [`crate::ShardedStore`].
    pub fn insert_encoded(&mut self, t: IdTriple) {
        self.stats = OnceLock::new(); // summary is stale once data changes
        let row = u32::try_from(self.triples.len()).expect("mem store row overflow");
        self.by_subject.push(t[0], row);
        self.by_predicate.push(t[1], row);
        self.by_object.push(t[2], row);
        self.triples.push(t);
    }

    /// Inserts many triples.
    pub fn extend<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        for t in triples {
            self.insert(t);
        }
    }

    /// The encoded triples (tests, diagnostics).
    pub fn id_triples(&self) -> &[IdTriple] {
        &self.triples
    }

    /// The shortest posting list applicable to `pattern`, if any position
    /// is bound. `None` means a full scan is required.
    fn best_list(&self, pattern: &Pattern) -> Option<&[u32]> {
        let candidates = [
            pattern[0].map(|id| self.by_subject.get(id)),
            pattern[1].map(|id| self.by_predicate.get(id)),
            pattern[2].map(|id| self.by_object.get(id)),
        ];
        candidates
            .into_iter()
            .flatten()
            .min_by_key(|list| list.len())
    }
}

impl TripleStore for MemStore {
    fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn len(&self) -> usize {
        self.triples.len()
    }

    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        match self.best_list(&pattern) {
            Some(list) => Box::new(
                list.iter()
                    .map(move |&row| self.triples[row as usize])
                    .filter(move |t| matches(t, &pattern)),
            ),
            None => Box::new(
                self.triples
                    .iter()
                    .filter(move |t| matches(t, &pattern))
                    .copied(),
            ),
        }
    }

    /// Partitioned scan: the shortest applicable posting list (or the flat
    /// triple span when nothing is bound) is split into at most `n`
    /// contiguous sub-spans, concatenating to [`MemStore::scan`]'s order.
    fn scan_chunks(&self, pattern: Pattern, n: usize) -> Vec<ScanChunk<'_>> {
        let chunks: Vec<ScanChunk<'_>> = match self.best_list(&pattern) {
            Some(list) => split_ranges(list.len(), n)
                .into_iter()
                .map(|r| ScanChunk::Rows {
                    rows: &list[r],
                    table: &self.triples,
                })
                .collect(),
            None => split_ranges(self.triples.len(), n)
                .into_iter()
                .map(|r| ScanChunk::Triples(&self.triples[r]))
                .collect(),
        };
        debug_assert_chunks_cover(self, pattern, &chunks);
        chunks
    }

    /// Heuristic estimate: the minimum over the posting lists of *all*
    /// bound positions. When two or more positions are bound and the
    /// shortest list is small (≤ [`EXACT_ESTIMATE_CAP`] candidates), the
    /// list is walked with residual filtering for an exact count —
    /// tightening doubly-bound patterns whose positions are individually
    /// frequent but jointly rare. Longer lists keep the length upper
    /// bound (in-memory engines hold no multi-column statistics).
    fn estimate(&self, pattern: Pattern) -> u64 {
        let bound = pattern.iter().filter(|p| p.is_some()).count();
        match self.best_list(&pattern) {
            Some(list) if bound >= 2 && list.len() <= EXACT_ESTIMATE_CAP => {
                list.iter()
                    .filter(|&&row| matches(&self.triples[row as usize], &pattern))
                    .count() as u64
            }
            Some(list) => list.len() as u64,
            None => self.triples.len() as u64,
        }
    }

    /// Lazily computed (and cached) on first request; inserts reset the
    /// cache, so incremental shard builds pay nothing until asked.
    fn stats(&self) -> Option<&StoreStats> {
        Some(
            self.stats
                .get_or_init(|| StoreStats::from_triples(&self.triples)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Iri, Literal, Subject, Term};

    fn store() -> MemStore {
        let mut g = Graph::new();
        g.add(
            Subject::iri("http://x/s1"),
            Iri::new("http://x/p1"),
            Term::iri("http://x/o1"),
        );
        g.add(
            Subject::iri("http://x/s1"),
            Iri::new("http://x/p2"),
            Term::Literal(Literal::integer(5)),
        );
        g.add(
            Subject::iri("http://x/s2"),
            Iri::new("http://x/p1"),
            Term::iri("http://x/o1"),
        );
        MemStore::from_graph(&g)
    }

    #[test]
    fn scan_all() {
        let s = store();
        assert_eq!(s.scan([None, None, None]).count(), 3);
    }

    #[test]
    fn scan_by_positions() {
        let s = store();
        let p1 = s.resolve(&Term::iri("http://x/p1")).unwrap();
        let s1 = s.resolve(&Term::iri("http://x/s1")).unwrap();
        let o1 = s.resolve(&Term::iri("http://x/o1")).unwrap();
        assert_eq!(s.scan([None, Some(p1), None]).count(), 2);
        assert_eq!(s.scan([Some(s1), None, None]).count(), 2);
        assert_eq!(s.scan([None, None, Some(o1)]).count(), 2);
        assert_eq!(s.scan([Some(s1), Some(p1), Some(o1)]).count(), 1);
        assert_eq!(s.scan([Some(s1), Some(p1), Some(s1)]).count(), 0);
    }

    #[test]
    fn missing_term_resolves_to_none() {
        let s = store();
        assert!(s.resolve(&Term::iri("http://x/absent")).is_none());
    }

    #[test]
    fn estimates_use_shortest_posting_list() {
        let s = store();
        let p1 = s.resolve(&Term::iri("http://x/p1")).unwrap();
        let p2 = s.resolve(&Term::iri("http://x/p2")).unwrap();
        assert_eq!(s.estimate([None, Some(p1), None]), 2);
        assert_eq!(s.estimate([None, Some(p2), None]), 1);
        assert_eq!(s.estimate([None, None, None]), 3);
        assert!(!s.has_exact_estimates());
    }

    #[test]
    fn doubly_bound_estimates_are_tightened_by_a_list_walk() {
        let s = store();
        let s1 = s.resolve(&Term::iri("http://x/s1")).unwrap();
        let p1 = s.resolve(&Term::iri("http://x/p1")).unwrap();
        let o1 = s.resolve(&Term::iri("http://x/o1")).unwrap();
        // s1 and p1 both have 2 triples, but only one triple carries both:
        // the walked estimate is 1, not the posting-list minimum of 2.
        assert_eq!(s.estimate([Some(s1), Some(p1), None]), 1);
        // A jointly impossible combination estimates to exactly zero.
        assert_eq!(s.estimate([Some(s1), Some(p1), Some(s1)]), 0);
        // Fully bound point lookups are exact too.
        assert_eq!(s.estimate([Some(s1), Some(p1), Some(o1)]), 1);
    }

    #[test]
    fn scan_chunks_concatenate_to_scan_order() {
        let s = store();
        let s1 = s.resolve(&Term::iri("http://x/s1"));
        let p1 = s.resolve(&Term::iri("http://x/p1"));
        for pattern in [
            [None, None, None],
            [None, p1, None],
            [s1, p1, None], // residual filtering over the posting list
        ] {
            let sequential: Vec<IdTriple> = s.scan(pattern).collect();
            for n in [1, 2, 5] {
                let chunked: Vec<IdTriple> = s
                    .scan_chunks(pattern, n)
                    .into_iter()
                    .flat_map(|c| c.iter(pattern))
                    .collect();
                assert_eq!(chunked, sequential, "pattern {pattern:?} n {n}");
            }
        }
    }

    #[test]
    fn contains_point_lookup() {
        let s = store();
        let s1 = s.resolve(&Term::iri("http://x/s1")).unwrap();
        assert!(s.contains([Some(s1), None, None]));
        assert!(!s.contains([Some(s1), Some(s1), None]));
    }
}
