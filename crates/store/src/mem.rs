//! The hash-indexed in-memory store.
//!
//! Models the paper's "in-memory engines" (ARQ/Jena, Sesame-Memory):
//! the document lives as a flat triple list plus per-term **hash adjacency
//! lists** for each position (Jena's memory model keeps exactly such S/P/O
//! hash indexes). Loading is cheap (hash inserts, no sorting) and pattern
//! scans walk the shortest applicable posting list with residual
//! filtering. Unlike [`crate::NativeStore`] there are no sorted range
//! indexes and no exact statistics — cardinality estimates are posting-
//! list heuristics, which is precisely the gap the `native-opt`
//! configuration's cost-based reordering exploits.

use sp2b_rdf::{Graph, Triple};

use crate::dictionary::{Dictionary, Id, IdTriple};
use crate::hash::FxHashMap;
use crate::traits::{matches, Pattern, TripleStore};

/// Posting lists for one triple position.
#[derive(Debug, Default)]
struct PositionIndex {
    lists: FxHashMap<Id, Vec<u32>>,
}

impl PositionIndex {
    fn push(&mut self, id: Id, row: u32) {
        self.lists.entry(id).or_default().push(row);
    }

    fn get(&self, id: Id) -> &[u32] {
        self.lists.get(&id).map_or(&[], Vec::as_slice)
    }
}

/// In-memory store with hash adjacency lists per position.
#[derive(Debug, Default)]
pub struct MemStore {
    dict: Dictionary,
    triples: Vec<IdTriple>,
    by_subject: PositionIndex,
    by_predicate: PositionIndex,
    by_object: PositionIndex,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Loads every triple of a graph.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut store = MemStore::new();
        store.extend(graph.iter());
        store
    }

    /// Inserts one triple.
    pub fn insert(&mut self, triple: &Triple) {
        let t = self.dict.encode_triple(triple);
        let row = u32::try_from(self.triples.len()).expect("mem store row overflow");
        self.by_subject.push(t[0], row);
        self.by_predicate.push(t[1], row);
        self.by_object.push(t[2], row);
        self.triples.push(t);
    }

    /// Inserts many triples.
    pub fn extend<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        for t in triples {
            self.insert(t);
        }
    }

    /// The encoded triples (tests, diagnostics).
    pub fn id_triples(&self) -> &[IdTriple] {
        &self.triples
    }

    /// The shortest posting list applicable to `pattern`, if any position
    /// is bound. `None` means a full scan is required.
    fn best_list(&self, pattern: &Pattern) -> Option<&[u32]> {
        let candidates = [
            pattern[0].map(|id| self.by_subject.get(id)),
            pattern[1].map(|id| self.by_predicate.get(id)),
            pattern[2].map(|id| self.by_object.get(id)),
        ];
        candidates
            .into_iter()
            .flatten()
            .min_by_key(|list| list.len())
    }
}

impl TripleStore for MemStore {
    fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn len(&self) -> usize {
        self.triples.len()
    }

    fn scan<'a>(&'a self, pattern: Pattern) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        match self.best_list(&pattern) {
            Some(list) => Box::new(
                list.iter()
                    .map(move |&row| self.triples[row as usize])
                    .filter(move |t| matches(t, &pattern)),
            ),
            None => Box::new(
                self.triples
                    .iter()
                    .filter(move |t| matches(t, &pattern))
                    .copied(),
            ),
        }
    }

    /// Heuristic estimate: the shortest applicable posting-list length —
    /// an upper bound that ignores residual positions (in-memory engines
    /// keep no multi-column statistics).
    fn estimate(&self, pattern: Pattern) -> u64 {
        match self.best_list(&pattern) {
            Some(list) => list.len() as u64,
            None => self.triples.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Iri, Literal, Subject, Term};

    fn store() -> MemStore {
        let mut g = Graph::new();
        g.add(
            Subject::iri("http://x/s1"),
            Iri::new("http://x/p1"),
            Term::iri("http://x/o1"),
        );
        g.add(
            Subject::iri("http://x/s1"),
            Iri::new("http://x/p2"),
            Term::Literal(Literal::integer(5)),
        );
        g.add(
            Subject::iri("http://x/s2"),
            Iri::new("http://x/p1"),
            Term::iri("http://x/o1"),
        );
        MemStore::from_graph(&g)
    }

    #[test]
    fn scan_all() {
        let s = store();
        assert_eq!(s.scan([None, None, None]).count(), 3);
    }

    #[test]
    fn scan_by_positions() {
        let s = store();
        let p1 = s.resolve(&Term::iri("http://x/p1")).unwrap();
        let s1 = s.resolve(&Term::iri("http://x/s1")).unwrap();
        let o1 = s.resolve(&Term::iri("http://x/o1")).unwrap();
        assert_eq!(s.scan([None, Some(p1), None]).count(), 2);
        assert_eq!(s.scan([Some(s1), None, None]).count(), 2);
        assert_eq!(s.scan([None, None, Some(o1)]).count(), 2);
        assert_eq!(s.scan([Some(s1), Some(p1), Some(o1)]).count(), 1);
        assert_eq!(s.scan([Some(s1), Some(p1), Some(s1)]).count(), 0);
    }

    #[test]
    fn missing_term_resolves_to_none() {
        let s = store();
        assert!(s.resolve(&Term::iri("http://x/absent")).is_none());
    }

    #[test]
    fn estimates_use_shortest_posting_list() {
        let s = store();
        let p1 = s.resolve(&Term::iri("http://x/p1")).unwrap();
        let p2 = s.resolve(&Term::iri("http://x/p2")).unwrap();
        let s1 = s.resolve(&Term::iri("http://x/s1")).unwrap();
        assert_eq!(s.estimate([None, Some(p1), None]), 2);
        assert_eq!(s.estimate([None, Some(p2), None]), 1);
        assert_eq!(s.estimate([None, None, None]), 3);
        // s1 has 2 triples, p1 has 2: min is 2 either way.
        assert_eq!(s.estimate([Some(s1), Some(p1), None]), 2);
        assert!(!s.has_exact_estimates());
    }

    #[test]
    fn contains_point_lookup() {
        let s = store();
        let s1 = s.resolve(&Term::iri("http://x/s1")).unwrap();
        assert!(s.contains([Some(s1), None, None]));
        assert!(!s.contains([Some(s1), Some(s1), None]));
    }
}
