//! Bulk-loading helpers shared by both stores, plus the parallel
//! sharded loader: one parser/interner thread routing encoded triples
//! through bounded channels to per-shard builder threads.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver};
use std::time::{Duration, Instant};

use sp2b_rdf::ntriples::{Error, Parser};

use crate::dictionary::{Dictionary, IdTriple};
use crate::mem::MemStore;
use crate::native::{IndexSelection, NativeStore};
use crate::segment::{write_segments, SegmentError, SegmentStats};
use crate::shard::{ShardBackend, ShardBy, ShardedStore};
use crate::traits::TripleStore;

/// Why a `sp2b save` failed: the N-Triples source did not parse, or the
/// segment files could not be written.
#[derive(Debug)]
pub enum SaveError {
    /// The N-Triples source is malformed (or unreadable).
    Parse(Error),
    /// Writing the segment directory failed.
    Segment(SegmentError),
}

impl std::fmt::Display for SaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaveError::Parse(e) => write!(f, "parsing N-Triples: {e}"),
            SaveError::Segment(e) => write!(f, "writing segments: {e}"),
        }
    }
}

impl std::error::Error for SaveError {}

impl From<Error> for SaveError {
    fn from(e: Error) -> Self {
        SaveError::Parse(e)
    }
}

impl From<SegmentError> for SaveError {
    fn from(e: SegmentError) -> Self {
        SaveError::Segment(e)
    }
}

/// Streams an N-Triples source into a [`MemStore`].
pub fn mem_store_from_reader<R: BufRead>(reader: R) -> Result<MemStore, Error> {
    let mut store = MemStore::new();
    for triple in Parser::new(reader) {
        store.insert(&triple?);
    }
    Ok(store)
}

/// Streams an N-Triples source into a [`NativeStore`] (encode while
/// parsing, then sort the selected indexes — index build time is part of
/// loading, as in the paper's loading metric).
pub fn native_store_from_reader<R: BufRead>(
    reader: R,
    selection: IndexSelection,
) -> Result<NativeStore, Error> {
    let mut dict = Dictionary::new();
    let mut triples: Vec<IdTriple> = Vec::new();
    for triple in Parser::new(reader) {
        triples.push(dict.encode_triple(&triple?));
    }
    Ok(NativeStore::from_encoded(dict, triples, selection))
}

/// Loads an N-Triples file into a [`MemStore`].
pub fn mem_store_from_path(path: &Path) -> Result<MemStore, Error> {
    let file = File::open(path)?;
    mem_store_from_reader(BufReader::with_capacity(1 << 16, file))
}

/// Loads an N-Triples file into a [`NativeStore`].
pub fn native_store_from_path(
    path: &Path,
    selection: IndexSelection,
) -> Result<NativeStore, Error> {
    let file = File::open(path)?;
    native_store_from_reader(BufReader::with_capacity(1 << 16, file), selection)
}

/// Triples per routed batch: batches amortize channel overhead while the
/// bounded channel keeps the parser from running unboundedly ahead of a
/// slow shard builder.
const ROUTE_BATCH: usize = 4096;

/// In-flight batches per shard channel (the backpressure bound).
const ROUTE_CHANNEL_DEPTH: usize = 4;

/// Streams an N-Triples source into a [`ShardedStore`] with **parallel
/// load**: this thread parses and interns terms into the shared
/// dictionary (ids in document order, identical to an unsharded load)
/// and routes each encoded triple by its partition hash through a
/// bounded channel to one of `shards` builder threads. Mem-backed
/// shards insert as batches arrive; native-backed shards accumulate and
/// then sort their permutation indexes — the index build runs
/// concurrently across shards and overlaps the tail of parsing.
///
/// A parse error aborts the load: channels close, builders drain and
/// join, and the error is returned (no partial store escapes).
pub fn sharded_store_from_reader<R: BufRead>(
    reader: R,
    shards: usize,
    shard_by: ShardBy,
    backend: ShardBackend,
) -> Result<ShardedStore, Error> {
    let n = shards.max(1);
    let mut dict = Dictionary::new();
    let (built, parse_error) = std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = sync_channel::<Vec<IdTriple>>(ROUTE_CHANNEL_DEPTH);
            txs.push(tx);
            handles.push(scope.spawn(move || shard_builder(backend, rx)));
        }
        let mut bufs: Vec<Vec<IdTriple>> =
            (0..n).map(|_| Vec::with_capacity(ROUTE_BATCH)).collect();
        let mut parse_error = None;
        for triple in Parser::new(reader) {
            match triple {
                Ok(t) => {
                    let enc = dict.encode_triple(&t);
                    let shard = shard_by.shard_of(&enc, n);
                    bufs[shard].push(enc);
                    if bufs[shard].len() >= ROUTE_BATCH
                        && txs[shard].send(std::mem::take(&mut bufs[shard])).is_err()
                    {
                        break; // builder gone (it panicked); join reports it
                    }
                }
                Err(e) => {
                    parse_error = Some(e);
                    break;
                }
            }
        }
        if parse_error.is_none() {
            for (tx, buf) in txs.iter().zip(bufs) {
                if !buf.is_empty() {
                    let _ = tx.send(buf);
                }
            }
        }
        drop(txs); // closes the channels: builders finish and exit
        let built: Vec<(Box<dyn TripleStore>, Duration)> = handles
            .into_iter()
            .map(|h| h.join().expect("shard builder thread panicked"))
            .collect();
        (built, parse_error)
    });
    match parse_error {
        Some(e) => Err(e),
        None => Ok(ShardedStore::assemble(dict, shard_by, built)),
    }
}

/// Streams an N-Triples source into a segment directory (see
/// [`crate::segment`] for the on-disk format): terms are interned in
/// document order, triples are routed into `shards` buckets, and each
/// bucket's three sorted runs — sorted in parallel on scoped threads —
/// are written as fixed-size checksummed blocks under a per-run
/// first-key index. The saved directory reopens via
/// [`disk_store_from_dir`] without reparsing, and serves scans through
/// a byte-budgeted block cache.
pub fn save_segments_from_reader<R: BufRead>(
    reader: R,
    dir: &Path,
    shards: usize,
    shard_by: ShardBy,
) -> Result<SegmentStats, SaveError> {
    let n = shards.max(1);
    let mut dict = Dictionary::new();
    let mut buckets: Vec<Vec<IdTriple>> = (0..n).map(|_| Vec::new()).collect();
    for triple in Parser::new(reader) {
        let enc = dict.encode_triple(&triple?);
        buckets[shard_by.shard_of(&enc, n)].push(enc);
    }
    Ok(write_segments(dir, &dict, shard_by, buckets)?)
}

/// Saves an N-Triples file as a segment directory (see
/// [`save_segments_from_reader`]).
pub fn save_segments_from_path(
    path: &Path,
    dir: &Path,
    shards: usize,
    shard_by: ShardBy,
) -> Result<SegmentStats, SaveError> {
    let file = File::open(path).map_err(Error::from)?;
    save_segments_from_reader(
        BufReader::with_capacity(1 << 16, file),
        dir,
        shards,
        shard_by,
    )
}

/// Opens a saved segment directory as a [`ShardedStore`] of
/// block-windowed disk shards — O(header + dictionary + block index),
/// no N-Triples parsing (see [`crate::disk::open_store`]).
pub fn disk_store_from_dir(dir: &Path) -> Result<ShardedStore, SegmentError> {
    crate::disk::open_store(dir)
}

/// [`disk_store_from_dir`] with an explicit block-cache byte budget
/// (`None` = the default fraction of the document size; see
/// [`crate::disk::open_store_with`]).
pub fn disk_store_from_dir_with(
    dir: &Path,
    cache_bytes: Option<u64>,
) -> Result<ShardedStore, SegmentError> {
    crate::disk::open_store_with(dir, cache_bytes)
}

/// Loads an N-Triples file into a [`ShardedStore`] (see
/// [`sharded_store_from_reader`]).
pub fn sharded_store_from_path(
    path: &Path,
    shards: usize,
    shard_by: ShardBy,
    backend: ShardBackend,
) -> Result<ShardedStore, Error> {
    let file = File::open(path)?;
    sharded_store_from_reader(
        BufReader::with_capacity(1 << 16, file),
        shards,
        shard_by,
        backend,
    )
}

/// One shard builder: drains its channel and builds the shard store.
/// The reported duration is the shard's *busy* build time — batch
/// inserts for mem shards, the index sort for native shards — not the
/// time spent blocked on the channel.
fn shard_builder(
    backend: ShardBackend,
    rx: Receiver<Vec<IdTriple>>,
) -> (Box<dyn TripleStore>, Duration) {
    match backend {
        ShardBackend::Mem => {
            let mut store = MemStore::new();
            let mut busy = Duration::ZERO;
            while let Ok(batch) = rx.recv() {
                let t0 = Instant::now();
                for t in batch {
                    store.insert_encoded(t);
                }
                busy += t0.elapsed();
            }
            (Box::new(store), busy)
        }
        ShardBackend::Native(selection) => {
            let mut triples: Vec<IdTriple> = Vec::new();
            while let Ok(batch) = rx.recv() {
                triples.extend(batch);
            }
            let t0 = Instant::now();
            let store = NativeStore::from_encoded(Dictionary::new(), triples, selection);
            (Box::new(store), t0.elapsed())
        }
        ShardBackend::Disk => unreachable!(
            "disk shards are opened from saved segments (crate::disk::open_store), \
             not streamed from a parser"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::TripleStore;

    const DOC: &str = "\
<http://x/s1> <http://x/p> <http://x/o1> .
<http://x/s2> <http://x/p> \"v\"^^<http://www.w3.org/2001/XMLSchema#string> .
_:b1 <http://x/p> <http://x/o1> .
";

    #[test]
    fn mem_store_loads_ntriples() {
        let store = mem_store_from_reader(DOC.as_bytes()).unwrap();
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn native_store_loads_ntriples() {
        let store = native_store_from_reader(DOC.as_bytes(), IndexSelection::all()).unwrap();
        assert_eq!(store.len(), 3);
        let p = store.resolve(&sp2b_rdf::Term::iri("http://x/p")).unwrap();
        assert_eq!(store.scan([None, Some(p), None]).count(), 3);
    }

    #[test]
    fn parse_errors_propagate() {
        let bad = "<unterminated\n";
        assert!(mem_store_from_reader(bad.as_bytes()).is_err());
        assert!(native_store_from_reader(bad.as_bytes(), IndexSelection::all()).is_err());
        assert!(sharded_store_from_reader(
            bad.as_bytes(),
            2,
            ShardBy::Subject,
            ShardBackend::Native(IndexSelection::all())
        )
        .is_err());
    }

    #[test]
    fn sharded_load_matches_unsharded() {
        // A document larger than one route batch, so batching and the
        // final flush both run.
        let mut doc = String::new();
        for i in 0..(ROUTE_BATCH + 100) {
            doc.push_str(&format!(
                "<http://x/s{}> <http://x/p{}> <http://x/o{}> .\n",
                i % 211,
                i % 7,
                i % 53
            ));
        }
        let flat = native_store_from_reader(doc.as_bytes(), IndexSelection::all()).unwrap();
        for shards in [1, 2, 5] {
            let sharded = sharded_store_from_reader(
                doc.as_bytes(),
                shards,
                ShardBy::Subject,
                ShardBackend::Native(IndexSelection::all()),
            )
            .unwrap();
            assert_eq!(sharded.len(), flat.len(), "{shards} shards");
            assert_eq!(sharded.shard_count(), shards);
            // The shared dictionary interns in document order: ids agree
            // with the unsharded load.
            let p = flat.resolve(&sp2b_rdf::Term::iri("http://x/p3")).unwrap();
            assert_eq!(
                sharded.resolve(&sp2b_rdf::Term::iri("http://x/p3")),
                Some(p)
            );
            assert_eq!(
                sharded.scan([None, Some(p), None]).count(),
                flat.scan([None, Some(p), None]).count()
            );
        }
    }

    #[test]
    fn sharded_mem_load_works() {
        let sharded = sharded_store_from_reader(
            DOC.as_bytes(),
            2,
            ShardBy::PredicateSubject,
            ShardBackend::Mem,
        )
        .unwrap();
        assert_eq!(sharded.len(), 3);
        let p = sharded.resolve(&sp2b_rdf::Term::iri("http://x/p")).unwrap();
        assert_eq!(sharded.scan([None, Some(p), None]).count(), 3);
    }
}
