//! Bulk-loading helpers shared by both stores.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use sp2b_rdf::ntriples::{Error, Parser};

use crate::dictionary::{Dictionary, IdTriple};
use crate::mem::MemStore;
use crate::native::{IndexSelection, NativeStore};

/// Streams an N-Triples source into a [`MemStore`].
pub fn mem_store_from_reader<R: BufRead>(reader: R) -> Result<MemStore, Error> {
    let mut store = MemStore::new();
    for triple in Parser::new(reader) {
        store.insert(&triple?);
    }
    Ok(store)
}

/// Streams an N-Triples source into a [`NativeStore`] (encode while
/// parsing, then sort the selected indexes — index build time is part of
/// loading, as in the paper's loading metric).
pub fn native_store_from_reader<R: BufRead>(
    reader: R,
    selection: IndexSelection,
) -> Result<NativeStore, Error> {
    let mut dict = Dictionary::new();
    let mut triples: Vec<IdTriple> = Vec::new();
    for triple in Parser::new(reader) {
        triples.push(dict.encode_triple(&triple?));
    }
    Ok(NativeStore::from_encoded(dict, triples, selection))
}

/// Loads an N-Triples file into a [`MemStore`].
pub fn mem_store_from_path(path: &Path) -> Result<MemStore, Error> {
    let file = File::open(path)?;
    mem_store_from_reader(BufReader::with_capacity(1 << 16, file))
}

/// Loads an N-Triples file into a [`NativeStore`].
pub fn native_store_from_path(
    path: &Path,
    selection: IndexSelection,
) -> Result<NativeStore, Error> {
    let file = File::open(path)?;
    native_store_from_reader(BufReader::with_capacity(1 << 16, file), selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::TripleStore;

    const DOC: &str = "\
<http://x/s1> <http://x/p> <http://x/o1> .
<http://x/s2> <http://x/p> \"v\"^^<http://www.w3.org/2001/XMLSchema#string> .
_:b1 <http://x/p> <http://x/o1> .
";

    #[test]
    fn mem_store_loads_ntriples() {
        let store = mem_store_from_reader(DOC.as_bytes()).unwrap();
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn native_store_loads_ntriples() {
        let store = native_store_from_reader(DOC.as_bytes(), IndexSelection::all()).unwrap();
        assert_eq!(store.len(), 3);
        let p = store.resolve(&sp2b_rdf::Term::iri("http://x/p")).unwrap();
        assert_eq!(store.scan([None, Some(p), None]).count(), 3);
    }

    #[test]
    fn parse_errors_propagate() {
        let bad = "<unterminated\n";
        assert!(mem_store_from_reader(bad.as_bytes()).is_err());
        assert!(native_store_from_reader(bad.as_bytes(), IndexSelection::all()).is_err());
    }
}
