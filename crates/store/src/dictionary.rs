//! Dictionary encoding: RDF terms ↔ dense integer ids.
//!
//! Both stores map every distinct term to a `u32` id at load time and
//! evaluate queries entirely over ids; terms are materialized again only
//! when rendering results or comparing literal *values* (ORDER BY,
//! value-based FILTER). This is the standard RDF storage technique the
//! paper's "native engines" rely on, and the ablation benchmark
//! (`DESIGN.md` §7.4) quantifies what it buys.

use sp2b_rdf::{Term, Triple};

use crate::hash::FxHashMap;

/// A dictionary-encoded term identifier.
pub type Id = u32;

/// Debug-build-only process-wide count of [`Dictionary::decode`] calls.
/// Lets tests assert that counting paths never materialize terms; release
/// builds (the benchmarks) pay nothing.
#[cfg(debug_assertions)]
pub static DECODE_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// An encoded triple in (s, p, o) id order.
pub type IdTriple = [Id; 3];

/// Bidirectional term↔id mapping. Ids are dense and allocation order is
/// first-seen order, so encoding the same document always yields the same
/// ids (determinism end to end).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Term, Id>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a term, returning its id (existing or fresh).
    pub fn encode(&mut self, term: &Term) -> Id {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = Id::try_from(self.terms.len()).expect("dictionary overflow (> 4G terms)");
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Encodes a whole triple.
    pub fn encode_triple(&mut self, t: &Triple) -> IdTriple {
        let [s, p, o] = t.to_terms();
        [self.encode(&s), self.encode(&p), self.encode(&o)]
    }

    /// Looks up a term's id without interning.
    pub fn lookup(&self, term: &Term) -> Option<Id> {
        self.ids.get(term).copied()
    }

    /// Decodes an id back to its term. Panics on a foreign id (ids are
    /// only ever produced by this dictionary).
    pub fn decode(&self, id: Id) -> &Term {
        #[cfg(debug_assertions)]
        DECODE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        &self.terms[id as usize]
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as Id, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_rdf::{Iri, Literal, Subject};

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://a/x"),
            Term::blank("b1"),
            Term::Literal(Literal::string("hello")),
            Term::Literal(Literal::integer(42)),
        ];
        let ids: Vec<Id> = terms.iter().map(|t| d.encode(t)).collect();
        for (t, &id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(id), t);
            assert_eq!(d.lookup(t), Some(id));
        }
    }

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let t = Term::iri("http://a/x");
        let a = d.encode(&t);
        let b = d.encode(&t);
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode(&Term::iri("http://a/1")), 0);
        assert_eq!(d.encode(&Term::iri("http://a/2")), 1);
        assert_eq!(d.encode(&Term::iri("http://a/1")), 0);
        assert_eq!(d.encode(&Term::iri("http://a/3")), 2);
    }

    #[test]
    fn distinct_literal_datatypes_get_distinct_ids() {
        let mut d = Dictionary::new();
        let plain = d.encode(&Term::Literal(Literal::plain("7")));
        let typed = d.encode(&Term::Literal(Literal::integer(7)));
        assert_ne!(plain, typed);
    }

    #[test]
    fn encode_triple_encodes_positions() {
        let mut d = Dictionary::new();
        let t = Triple::new(
            Subject::iri("http://a/s"),
            Iri::new("http://a/p"),
            Term::iri("http://a/s"),
        );
        let [s, p, o] = d.encode_triple(&t);
        assert_eq!(s, o, "same term must get the same id in any position");
        assert_ne!(s, p);
    }

    #[test]
    fn lookup_missing_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.lookup(&Term::iri("http://nowhere")), None);
    }
}
