//! Criterion counterpart of Table III: raw generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sp2b_datagen::{Config, Generator, NullSink};

fn generator_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for n in [10_000u64, 50_000, 250_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                Generator::new(Config::triples(n))
                    .run(&mut NullSink)
                    .expect("null sink cannot fail")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, generator_scaling);
criterion_main!(benches);
