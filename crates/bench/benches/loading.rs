//! Loading-time benchmarks (Figure 5 bottom-left / LOADING TIME metric):
//! hash-indexed memory store vs. six-index native store vs. SPO-only
//! native store, plus the N-Triples parse path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp2b_datagen::{generate_graph, generate_to_writer, Config};
use sp2b_store::{
    mem_store_from_reader, native_store_from_reader, IndexSelection, MemStore, NativeStore,
};

const TRIPLES: u64 = 50_000;

fn loading(c: &mut Criterion) {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let mut serialized = Vec::new();
    generate_to_writer(Config::triples(TRIPLES), &mut serialized).expect("vec sink");

    let mut group = c.benchmark_group("loading");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRIPLES));

    group.bench_function("mem-store", |b| {
        b.iter(|| MemStore::from_graph(&graph));
    });
    group.bench_function("native-six-indexes", |b| {
        b.iter(|| NativeStore::with_indexes(&graph, IndexSelection::all()));
    });
    group.bench_function("native-spo-only", |b| {
        b.iter(|| NativeStore::with_indexes(&graph, IndexSelection::spo_only()));
    });
    group.bench_function("parse-ntriples-into-mem", |b| {
        b.iter(|| mem_store_from_reader(&serialized[..]).expect("valid document"));
    });
    group.bench_function("parse-ntriples-into-native", |b| {
        b.iter(|| {
            native_store_from_reader(&serialized[..], IndexSelection::all())
                .expect("valid document")
        });
    });
    group.finish();
}

criterion_group!(benches, loading);
criterion_main!(benches);
