//! Update-stream benchmarks (the Section VII extension): applying the
//! generator's year batches incrementally to the native store vs.
//! rebuilding from scratch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sp2b_datagen::{generate_graph, Config, UpdateStream};
use sp2b_rdf::Graph;
use sp2b_store::{NativeStore, TripleStore};

const TRIPLES: u64 = 50_000;

fn updates(c: &mut Criterion) {
    let stream = UpdateStream::generate(Config::triples(TRIPLES));
    let batches = stream.batches();
    let (full_graph, _) = generate_graph(Config::triples(TRIPLES));

    let mut group = c.benchmark_group("updates");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRIPLES));

    group.bench_function("incremental-year-batches", |b| {
        b.iter(|| {
            let mut store = NativeStore::from_graph(&Graph::new());
            for batch in batches {
                store.insert_batch(&batch.triples);
            }
            assert_eq!(store.len() as u64, TRIPLES);
            store
        });
    });
    group.bench_function("bulk-rebuild", |b| {
        b.iter(|| NativeStore::from_graph(&full_graph));
    });
    // The realistic middle ground: bulk-load history, then apply the last
    // few years incrementally.
    group.bench_function("bulk-plus-last-3-years", |b| {
        let split = batches.len().saturating_sub(3);
        let mut history = Graph::new();
        for batch in &batches[..split] {
            history.extend(batch.triples.iter().cloned());
        }
        b.iter(|| {
            let mut store = NativeStore::from_graph(&history);
            for batch in &batches[split..] {
                store.insert_batch(&batch.triples);
            }
            assert_eq!(store.len() as u64, TRIPLES);
            store
        });
    });
    group.finish();
}

criterion_group!(benches, updates);
criterion_main!(benches);
