//! Ablation benchmarks for the design choices in DESIGN.md §7: join
//! reordering, filter pushing/substitution, and the index layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp2b_core::BenchQuery;
use sp2b_datagen::{generate_graph, Config};
use sp2b_sparql::{OptimizerConfig, QueryEngine};
use sp2b_store::{IndexSelection, NativeStore, SharedStore, TripleStore};

const TRIPLES: u64 = 25_000;

fn count_query(store: &SharedStore, cfg: &OptimizerConfig, q: BenchQuery) -> u64 {
    let engine = QueryEngine::new(store.clone()).optimizer(*cfg);
    let prepared = engine.prepare(q.text()).expect("benchmark query parses");
    engine.count(&prepared).expect("uncancelled evaluation succeeds")
}

fn optimizer_ablation(c: &mut Criterion) {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    let configs: [(&str, OptimizerConfig); 4] = [
        ("full", OptimizerConfig::full()),
        (
            "no-reorder",
            OptimizerConfig { reorder_patterns: false, ..OptimizerConfig::full() },
        ),
        (
            "no-push",
            OptimizerConfig {
                push_filters: false,
                substitute_filters: false,
                ..OptimizerConfig::full()
            },
        ),
        ("naive", OptimizerConfig::default()),
    ];
    // Queries where the respective technique matters (Table II rows 4/5).
    for q in [BenchQuery::Q2, BenchQuery::Q3a, BenchQuery::Q8, BenchQuery::Q11] {
        let mut group = c.benchmark_group(format!("optimizer/{}", q.label()));
        group.sample_size(10);
        for (label, cfg) in &configs {
            group.bench_with_input(BenchmarkId::from_parameter(label), cfg, |b, cfg| {
                b.iter(|| count_query(&store, cfg, q));
            });
        }
        group.finish();
    }
}

fn index_ablation(c: &mut Criterion) {
    let (graph, _) = generate_graph(Config::triples(TRIPLES));
    let all = NativeStore::with_indexes(&graph, IndexSelection::all()).into_shared();
    let spo = NativeStore::with_indexes(&graph, IndexSelection::spo_only()).into_shared();
    let cfg = OptimizerConfig::full();
    // Q9/Q10 exercise object-bound patterns where the index layout decides
    // between a range scan and a residual full scan.
    for q in [BenchQuery::Q9, BenchQuery::Q10, BenchQuery::Q11] {
        let mut group = c.benchmark_group(format!("indexes/{}", q.label()));
        group.sample_size(10);
        group.bench_function("six-indexes", |b| b.iter(|| count_query(&all, &cfg, q)));
        group.bench_function("spo-only", |b| b.iter(|| count_query(&spo, &cfg, q)));
        group.finish();
    }
}

criterion_group!(benches, optimizer_ablation, index_ablation);
criterion_main!(benches);
