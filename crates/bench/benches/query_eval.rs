//! Criterion counterpart of Figures 5–8: per-query evaluation time on the
//! optimized configurations. The timeout-prone queries (Q4, Q5a, Q6) run
//! in their own group at a smaller scale so the bench suite stays fast.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp2b_core::BenchQuery;
use sp2b_datagen::{generate_graph, Config};
use sp2b_sparql::{OptimizerConfig, QueryEngine};
use sp2b_store::{MemStore, NativeStore, SharedStore, TripleStore};

const FAST_TRIPLES: u64 = 25_000;
const HEAVY_TRIPLES: u64 = 10_000;

const FAST_QUERIES: &[BenchQuery] = &[
    BenchQuery::Q1,
    BenchQuery::Q2,
    BenchQuery::Q3a,
    BenchQuery::Q3b,
    BenchQuery::Q3c,
    BenchQuery::Q5b,
    BenchQuery::Q7,
    BenchQuery::Q8,
    BenchQuery::Q9,
    BenchQuery::Q10,
    BenchQuery::Q11,
    BenchQuery::Q12a,
    BenchQuery::Q12b,
    BenchQuery::Q12c,
];

const HEAVY_QUERIES: &[BenchQuery] = &[BenchQuery::Q4, BenchQuery::Q5a, BenchQuery::Q6];

fn count_query(store: &SharedStore, cfg: &OptimizerConfig, q: BenchQuery) -> u64 {
    let engine = QueryEngine::new(store.clone()).optimizer(*cfg);
    let prepared = engine.prepare(q.text()).expect("benchmark query parses");
    engine.count(&prepared).expect("uncancelled evaluation succeeds")
}

fn queries_native(c: &mut Criterion) {
    let (graph, _) = generate_graph(Config::triples(FAST_TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    let cfg = OptimizerConfig::full();
    let mut group = c.benchmark_group("native-opt");
    group.sample_size(10);
    for &q in FAST_QUERIES {
        group.bench_with_input(BenchmarkId::from_parameter(q.label()), &q, |b, &q| {
            b.iter(|| count_query(&store, &cfg, q));
        });
    }
    group.finish();
}

fn queries_mem(c: &mut Criterion) {
    let (graph, _) = generate_graph(Config::triples(FAST_TRIPLES));
    let cfg = OptimizerConfig::heuristic();
    let mut group = c.benchmark_group("mem-opt");
    group.sample_size(10);
    for &q in FAST_QUERIES {
        group.bench_with_input(BenchmarkId::from_parameter(q.label()), &q, |b, &q| {
            // In-memory engines reload the document per evaluation
            // (the paper's measurement model).
            b.iter(|| {
                let store = MemStore::from_graph(&graph).into_shared();
                count_query(&store, &cfg, q)
            });
        });
    }
    group.finish();
}

fn queries_heavy(c: &mut Criterion) {
    let (graph, _) = generate_graph(Config::triples(HEAVY_TRIPLES));
    let store = NativeStore::from_graph(&graph).into_shared();
    let cfg = OptimizerConfig::full();
    let mut group = c.benchmark_group("native-opt-heavy");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    for &q in HEAVY_QUERIES {
        group.bench_with_input(BenchmarkId::from_parameter(q.label()), &q, |b, &q| {
            b.iter(|| count_query(&store, &cfg, q));
        });
    }
    group.finish();
}

criterion_group!(benches, queries_native, queries_mem, queries_heavy);
criterion_main!(benches);
