//! One function per paper experiment; each returns the formatted rows so
//! the CLI can print them and tests can assert on them.

use std::io;
use std::time::{Duration, Instant};

use sp2b_core::multiuser::WorkItem;
use sp2b_core::{Arrival, BenchQuery, EngineKind, ExtQuery, WeightedMix};
use sp2b_datagen::{
    generate_graph, params, Config, Generator, GeneratorStats, NtriplesSink, NullSink,
};
use sp2b_sparql::{OptimizerConfig, QueryEngine};
use sp2b_store::{IndexSelection, NativeStore, SharedStore, TripleStore};

/// The paper's scales (Table VIII/V columns). The harness defaults to the
/// first four; 5M/25M are reachable via `--sizes`.
pub const DEFAULT_SIZES: [u64; 4] = [10_000, 50_000, 250_000, 1_000_000];

// ---------------------------------------------------------------------------
// Table III — data generator performance
// ---------------------------------------------------------------------------

/// Table III: generation wall-clock for documents of 10³ … 10^max_exp
/// triples (the paper goes to 10⁹; every step is pure CPU + the sink).
pub fn table3(max_exp: u32) -> String {
    let mut out =
        String::from("TABLE III — DOCUMENT GENERATION (NullSink: generation cost only)\n\n");
    out.push_str(&format!("{:>12} {:>14}\n", "#triples", "elapsed [s]"));
    for exp in 3..=max_exp {
        let n = 10u64.pow(exp);
        let start = Instant::now();
        let stats = Generator::new(Config::triples(n))
            .run(&mut NullSink)
            .expect("null sink cannot fail");
        let secs = start.elapsed().as_secs_f64();
        debug_assert_eq!(stats.triples, n);
        out.push_str(&format!("{n:>12} {secs:>14.3}\n"));
    }
    out
}

// ---------------------------------------------------------------------------
// Table VIII — document characteristics
// ---------------------------------------------------------------------------

/// Generates a document of `n` triples, counting serialized bytes without
/// keeping them (file-size column with no disk traffic).
pub fn generate_stats(n: u64) -> GeneratorStats {
    let mut sink = NtriplesSink::new(io::sink());
    Generator::new(Config::triples(n))
        .run(&mut sink)
        .expect("io::sink cannot fail")
}

/// Table VIII: characteristics of generated documents per scale.
pub fn table8(sizes: &[u64]) -> String {
    let mut out = String::from("TABLE VIII — CHARACTERISTICS OF GENERATED DOCUMENTS\n\n");
    let stats: Vec<GeneratorStats> = sizes.iter().map(|&n| generate_stats(n)).collect();
    out.push_str(&format!("{:<16}", "#Triples"));
    for &n in sizes {
        out.push_str(&format!("{:>12}", sp2b_core::report::scale_label(n)));
    }
    out.push('\n');
    let rows = stats[0].table_viii_rows();
    for (i, (label, _)) in rows.iter().enumerate() {
        out.push_str(&format!("{label:<16}"));
        for s in &stats {
            let value = &s.table_viii_rows()[i].1;
            out.push_str(&format!("{value:>12}"));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 2a / 2b / 2c — distribution validation
// ---------------------------------------------------------------------------

/// Figure 2a: distribution of outgoing-citation counts in a generated
/// document vs. the paper's Gaussian fit `d_cite`.
pub fn fig2a(triples: u64) -> String {
    let mut sink = NullSink;
    let stats = Generator::new(Config::triples(triples).with_detailed_stats())
        .run(&mut sink)
        .expect("null sink cannot fail");
    let total: u64 = stats.citation_histogram.values().sum();
    let mut out = format!(
        "FIGURE 2a — CITATION COUNT DISTRIBUTION ({} citing documents in {} triples)\n\n",
        total, stats.triples
    );
    out.push_str(&format!(
        "{:>5} {:>12} {:>12}\n",
        "x", "observed", "gauss-fit"
    ));
    for x in 1..=60u32 {
        let observed = *stats.citation_histogram.get(&x).unwrap_or(&0) as f64 / total.max(1) as f64;
        let fit = params::D_CITE.pdf(x as f64);
        out.push_str(&format!("{x:>5} {observed:>12.4} {fit:>12.4}\n"));
    }
    out
}

/// Figure 2b: document-class instances per year vs. the logistic fits.
pub fn fig2b(year_limit: i32) -> String {
    let (_, stats) = generate_graph_with_years(year_limit);
    let mut out =
        String::from("FIGURE 2b — DOCUMENT CLASS INSTANCES PER YEAR (observed | logistic fit)\n\n");
    out.push_str(&format!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11} {:>11} {:>11}\n",
        "year", "proc", "fit", "journal", "fit", "inproc", "fit", "article", "fit"
    ));
    for rec in &stats.years {
        let yr = rec.year;
        out.push_str(&format!(
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11} {:>11} {:>11}\n",
            yr,
            rec.class_counts[sp2b_datagen::DocClass::Proceedings.index()],
            params::F_PROC.count(yr),
            rec.journals,
            params::F_JOURNAL.count(yr),
            rec.class_counts[sp2b_datagen::DocClass::Inproceedings.index()],
            params::F_INPROC.count(yr),
            rec.class_counts[sp2b_datagen::DocClass::Article.index()],
            params::F_ARTICLE.count(yr),
        ));
    }
    out
}

/// Figure 2c: number of authors with exactly x publications, for selected
/// years, against the `f_awp` power law.
pub fn fig2c(year_limit: i32, years: &[i32]) -> String {
    let (_, stats) = generate_graph_with_years(year_limit);
    let mut out =
        String::from("FIGURE 2c — AUTHORS WITH PUBLICATION COUNT x (observed | power-law fit)\n");
    for &yr in years {
        let Some(rec) = stats.years.iter().find(|r| r.year == yr) else {
            out.push_str(&format!(
                "\nyear {yr}: not generated (limit {year_limit})\n"
            ));
            continue;
        };
        let publ: u64 = rec
            .publications_histogram
            .iter()
            .map(|(x, n)| *x as u64 * n)
            .sum();
        out.push_str(&format!("\nyear {yr} ({publ} publications)\n"));
        out.push_str(&format!(
            "{:>5} {:>12} {:>14}\n",
            "x", "observed", "f_awp fit"
        ));
        for x in [1u32, 2, 3, 5, 8, 13, 21, 34, 55, 80] {
            let observed = *rec.publications_histogram.get(&x).unwrap_or(&0);
            let fit = params::f_awp(x as f64, yr, publ as f64).max(0.0);
            out.push_str(&format!("{x:>5} {observed:>12} {fit:>14.1}\n"));
        }
    }
    out
}

fn generate_graph_with_years(year_limit: i32) -> ((), GeneratorStats) {
    let stats = Generator::new(Config::up_to_year(year_limit).with_detailed_stats())
        .run(&mut NullSink)
        .expect("null sink cannot fail");
    ((), stats)
}

// ---------------------------------------------------------------------------
// Table V — result sizes
// ---------------------------------------------------------------------------

/// Table V: result sizes via the optimized native engine only (counts are
/// engine-independent; this is the fastest path).
pub fn table5(sizes: &[u64], timeout: Duration) -> String {
    let mut out = String::from("TABLE V — NUMBER OF QUERY RESULTS\n\n");
    out.push_str(&format!("{:<9}", "scale"));
    for q in BenchQuery::ALL {
        out.push_str(&format!("{:>10}", q.label()));
    }
    out.push('\n');
    for &n in sizes {
        let (graph, _) = generate_graph(Config::triples(n));
        let engine =
            QueryEngine::new(NativeStore::from_graph(&graph).into_shared()).timeout(timeout);
        out.push_str(&format!("{:<9}", sp2b_core::report::scale_label(n)));
        for q in BenchQuery::ALL {
            // The streaming count path: no term ever decodes.
            let counted = engine
                .prepare(q.text())
                .and_then(|prepared| engine.count(&prepared));
            match counted {
                Ok(c) => out.push_str(&format!("{c:>10}")),
                Err(_) => out.push_str(&format!("{:>10}", "T")),
            }
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Ablation — DESIGN.md §7
// ---------------------------------------------------------------------------

/// One ablation configuration.
struct AblationConfig {
    label: &'static str,
    optimizer: OptimizerConfig,
    indexes: IndexSelection,
}

/// Ablation study over the optimizer's techniques and the index layout
/// (DESIGN.md §7): join reordering, filter pushing, filter substitution,
/// hexastore vs. single SPO index.
pub fn ablation(triples: u64, timeout: Duration) -> String {
    let configs = [
        AblationConfig {
            label: "full",
            optimizer: OptimizerConfig::full(),
            indexes: IndexSelection::all(),
        },
        AblationConfig {
            label: "no-reorder",
            optimizer: OptimizerConfig {
                reorder_patterns: false,
                ..OptimizerConfig::full()
            },
            indexes: IndexSelection::all(),
        },
        AblationConfig {
            label: "no-push",
            optimizer: OptimizerConfig {
                push_filters: false,
                substitute_filters: false,
                ..OptimizerConfig::full()
            },
            indexes: IndexSelection::all(),
        },
        AblationConfig {
            label: "no-subst",
            optimizer: OptimizerConfig {
                substitute_filters: false,
                ..OptimizerConfig::full()
            },
            indexes: IndexSelection::all(),
        },
        AblationConfig {
            label: "spo-only",
            optimizer: OptimizerConfig::full(),
            indexes: IndexSelection::spo_only(),
        },
    ];
    let queries = [
        BenchQuery::Q2,
        BenchQuery::Q3a,
        BenchQuery::Q3c,
        BenchQuery::Q4,
        BenchQuery::Q5b,
        BenchQuery::Q8,
        BenchQuery::Q9,
        BenchQuery::Q10,
        BenchQuery::Q11,
    ];

    let (graph, _) = generate_graph(Config::triples(triples));
    let mut out = format!(
        "ABLATION — optimizer techniques and index layout ({} triples, timeout {:?})\n\n",
        triples, timeout
    );
    out.push_str(&format!("{:<12}", "config"));
    for q in queries {
        out.push_str(&format!("{:>10}", q.label()));
    }
    out.push_str(&format!("{:>10}\n", "load[s]"));

    for cfg in &configs {
        let start = Instant::now();
        let store = NativeStore::with_indexes(&graph, cfg.indexes).into_shared();
        let load = start.elapsed().as_secs_f64();
        out.push_str(&format!("{:<12}", cfg.label));
        for q in queries {
            out.push_str(&run_cell(&store, &cfg.optimizer, q, timeout));
        }
        out.push_str(&format!("{load:>10.3}\n"));
    }
    out
}

fn run_cell(
    store: &SharedStore,
    cfg: &OptimizerConfig,
    q: BenchQuery,
    timeout: Duration,
) -> String {
    let engine = QueryEngine::new(store.clone())
        .optimizer(*cfg)
        .timeout(timeout);
    let prepared = engine.prepare(q.text()).expect("queries parse");
    let start = Instant::now();
    match engine.count(&prepared) {
        Ok(_) => format!("{:>10.4}", start.elapsed().as_secs_f64()),
        Err(_) => format!("{:>10}", "T"),
    }
}

// ---------------------------------------------------------------------------
// Thread scaling — morsel-driven parallel execution
// ---------------------------------------------------------------------------

/// Thread-scaling experiment (behind `sp2b scaling`): wall-clock of the
/// decode-free counting path per query on a single native store (loaded
/// once, full optimization) at each requested thread count, with speedup
/// relative to the *first* configured count — conventionally 1, making
/// the column a plain parallel speedup. Timed-out cells print `T` and
/// earn no speedup.
pub fn thread_scaling(
    triples: u64,
    threads: &[usize],
    timeout: Duration,
    queries: &[BenchQuery],
) -> String {
    let (graph, _) = generate_graph(Config::triples(triples));
    let store = NativeStore::from_graph(&graph).into_shared();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = format!(
        "THREAD SCALING — morsel-driven parallel execution \
         ({triples} triples, native store, timeout {timeout:?})\n\
         host reports {cores} available core(s); thread counts beyond that \
         time-slice and cannot improve wall-clock\n\n"
    );
    out.push_str(&format!("{:<6}", "query"));
    for &t in threads {
        out.push_str(&format!("{:>12}{:>9}", format!("t={t} [s]"), "speedup"));
    }
    out.push('\n');
    for &q in queries {
        out.push_str(&format!("{:<6}", q.label()));
        let mut baseline: Option<f64> = None;
        for (pos, &t) in threads.iter().enumerate() {
            let engine = QueryEngine::new(store.clone())
                .optimizer(OptimizerConfig::full())
                .timeout(timeout)
                .parallelism(t);
            let prepared = engine.prepare(q.text()).expect("queries parse");
            let start = Instant::now();
            let counted = engine.count(&prepared);
            let secs = start.elapsed().as_secs_f64();
            match counted {
                Ok(_) => {
                    // The baseline is strictly the first configured
                    // count; if that one timed out, later cells show no
                    // speedup rather than silently rebasing.
                    if pos == 0 {
                        baseline = Some(secs);
                    }
                    match baseline {
                        Some(base) => {
                            out.push_str(&format!("{secs:>12.4}{:>8.2}x", base / secs.max(1e-9)))
                        }
                        None => out.push_str(&format!("{secs:>12.4}{:>9}", "-")),
                    }
                }
                Err(_) => out.push_str(&format!("{:>12}{:>9}", "T", "-")),
            }
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Threshold calibration (`sp2b calibrate`)
// ---------------------------------------------------------------------------

/// Measured calibration of the exchange threshold base
/// (`plan::parallel_threshold`): the static base of 512 rows encodes a
/// *guessed* ratio between fan-out overhead (thread spawn, channel,
/// merge) and per-row pipeline work; this experiment measures both on
/// generated data on the actual host and prints the base those
/// measurements imply, verified by re-running with the suggestion fed
/// through `QueryOptions::parallel_base`.
///
/// Method: a full-scan, scan-and-emit count (`SELECT ?s WHERE { ?s ?p
/// ?o }`) runs sequentially (min of `runs`, giving the per-row cost) and
/// with a forced exchange at `degree` workers (`parallel_base(1)`; min
/// of `runs`). The wall-clock the exchange *adds* is the fan-out
/// overhead; dividing by the morsel count gives per-morsel overhead.
/// The suggested base is the driving-row count at which a
/// reference-cost pipeline (8 probes/row, the model's anchor — a plain
/// scan row costs 0.5) does [`CALIBRATE_PAYOFF`]× the fan-out overhead
/// of work, so fanning out is worth it from there up. On a single-core
/// host the overhead is pure loss and the suggestion lands high; with
/// real cores it shrinks toward the clamp floor.
pub fn calibrate(triples: u64, degree: usize, runs: usize) -> Result<String, String> {
    const CALIBRATE_PAYOFF: f64 = 2.0;
    /// Model cost (in probe units) of one scan-and-emit driving row.
    const SCAN_ROW_COST: f64 = 0.5;
    const REFERENCE_COST: f64 = 8.0;
    let degree = degree.max(2);
    let runs = runs.max(1);
    let (graph, _) = generate_graph(Config::triples(triples));
    let store = NativeStore::from_graph(&graph).into_shared();
    let rows = store.len() as u64;
    if rows == 0 {
        return Err("calibration needs a non-empty document".into());
    }
    let text = "SELECT ?s WHERE { ?s ?p ?o }";

    let time_count = |engine: &QueryEngine| -> Result<Duration, String> {
        let prepared = engine.prepare(text).map_err(|e| e.to_string())?;
        let mut best: Option<Duration> = None;
        for _ in 0..runs {
            let t0 = Instant::now();
            let n = engine.count(&prepared).map_err(|e| e.to_string())?;
            let elapsed = t0.elapsed();
            if n != rows {
                return Err(format!("calibration scan counted {n}, expected {rows}"));
            }
            best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
        }
        Ok(best.expect("runs >= 1"))
    };

    let sequential = QueryEngine::with_options(
        store.clone(),
        sp2b_sparql::QueryOptions::new().parallelism(1),
    );
    let t_seq = time_count(&sequential)?;
    // parallel_base(1) forces the exchange however small the scan.
    let forced = QueryEngine::with_options(
        store.clone(),
        sp2b_sparql::QueryOptions::new()
            .parallelism(degree)
            .parallel_base(1),
    );
    let t_par = time_count(&forced)?;
    let morsels = store
        .scan_chunks(
            [None, None, None],
            degree * sp2b_sparql::par::MORSELS_PER_WORKER,
        )
        .len()
        .max(1);

    let t_row = t_seq.as_secs_f64() / rows as f64;
    let overhead = t_par.as_secs_f64() - t_seq.as_secs_f64();
    let per_morsel = overhead.max(0.0) / morsels as f64;
    // Per-probe time from the measured scan row, scaled to the reference
    // pipeline; the base is where reference-pipeline work covers the
    // payoff multiple of the whole fan-out overhead.
    let t_ref_row = t_row * (REFERENCE_COST / SCAN_ROW_COST);
    let suggested = ((CALIBRATE_PAYOFF * overhead.max(0.0)) / t_ref_row.max(1e-12))
        .round()
        .clamp(64.0, 1e7) as u64;

    // Verification: the suggested base must still answer correctly.
    let verified = QueryEngine::with_options(
        store.clone(),
        sp2b_sparql::QueryOptions::new()
            .parallelism(degree)
            .parallel_base(suggested),
    );
    let prepared = verified.prepare(text).map_err(|e| e.to_string())?;
    let n = verified.count(&prepared).map_err(|e| e.to_string())?;
    if n != rows {
        return Err(format!("verification counted {n}, expected {rows}"));
    }
    let fans_out = sp2b_sparql::plan::has_exchange(prepared.plan());

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = format!(
        "THRESHOLD CALIBRATION — {triples} triples, degree {degree}, min of {runs} run(s) \
         (host reports {cores} core(s))\n\n"
    );
    out.push_str(&format!(
        "{:<34} {:>14}\n",
        "sequential full scan (count)",
        format!("{:.4} s", t_seq.as_secs_f64())
    ));
    out.push_str(&format!(
        "{:<34} {:>14}\n",
        format!("forced exchange × {degree} ({morsels} morsels)"),
        format!("{:.4} s", t_par.as_secs_f64())
    ));
    out.push_str(&format!(
        "{:<34} {:>14}\n",
        "fan-out overhead (total)",
        format!("{:.2} ms", overhead.max(0.0) * 1e3)
    ));
    out.push_str(&format!(
        "{:<34} {:>14}\n",
        "per-morsel overhead",
        format!("{:.1} µs", per_morsel * 1e6)
    ));
    out.push_str(&format!(
        "{:<34} {:>14}\n",
        "per-driving-row cost (scan)",
        format!("{:.1} ns", t_row * 1e9)
    ));
    out.push_str(&format!(
        "\nsuggested parallel_threshold base: {suggested} rows (static default: {})\n",
        sp2b_sparql::plan::PARALLEL_BASE_THRESHOLD
    ));
    out.push_str(&format!(
        "verification at the suggested base: count correct; a {rows}-row full scan {}\n",
        if fans_out {
            "fans out"
        } else {
            "stays sequential"
        }
    ));
    out.push_str(
        "feed it into an engine with QueryOptions::new().parallel_base(N) \
         (the clamp window scales with the base: N/4 … N×8)\n",
    );
    out.push('\n');
    out.push_str(&calibrate_weights(&store, rows, runs, t_seq)?);
    Ok(out)
}

/// Measured per-operator cost weights (`plan::CostWeights`): times a
/// filtered scan, an index-probe chain and a hash self-join against the
/// plain full scan, and expresses each operator's marginal per-row time
/// in index-probe units (probe ≡ 1.0). The differences fold the rows the
/// heavier shapes additionally emit into the operator's weight — a crude
/// but *measured* replacement for the hand-tuned constants, fed back in
/// through `QueryOptions::cost_weights`.
fn calibrate_weights(
    store: &SharedStore,
    rows: u64,
    runs: usize,
    t_scan: Duration,
) -> Result<String, String> {
    use sp2b_sparql::CostWeights;

    let time_query = |text: &str| -> Result<Duration, String> {
        let engine = QueryEngine::with_options(
            store.clone(),
            sp2b_sparql::QueryOptions::new().parallelism(1),
        );
        let prepared = engine.prepare(text).map_err(|e| e.to_string())?;
        let mut best: Option<Duration> = None;
        for _ in 0..runs.max(1) {
            let t0 = Instant::now();
            engine.count(&prepared).map_err(|e| e.to_string())?;
            let elapsed = t0.elapsed();
            best = Some(best.map_or(elapsed, |b| b.min(elapsed)));
        }
        Ok(best.expect("runs >= 1"))
    };

    // Marginal per-driving-row time of each operator over the plain scan.
    let t_filter = time_query("SELECT ?s WHERE { ?s ?p ?o FILTER (?o != ?s) }")?;
    let t_probe = time_query("SELECT ?s WHERE { ?s ?p ?o . ?s ?q ?r }")?;
    let t_hash = time_query("SELECT ?s WHERE { { ?s ?p ?o } { ?s ?q ?r } }")?;

    let per_row = |t: Duration, baseline: Duration| -> f64 {
        (t.as_secs_f64() - baseline.as_secs_f64()).max(0.0) / rows as f64
    };
    let emit_t = t_scan.as_secs_f64() / rows as f64;
    let filter_t = per_row(t_filter, t_scan);
    let probe_t = per_row(t_probe, t_scan);
    // The hash join scans both sides; its marginal cost over *two* scans
    // is the per-probe bucket work.
    let hash_t = (t_hash.as_secs_f64() - 2.0 * t_scan.as_secs_f64()).max(0.0) / rows as f64;

    let defaults = CostWeights::default();
    // Probe is the model's unit. A degenerate measurement (probe time in
    // the noise floor) keeps the hand-tuned defaults rather than dividing
    // by nothing.
    if probe_t <= 1e-12 {
        return Ok(format!(
            "OPERATOR WEIGHTS — probe time below the noise floor; keeping defaults \
             (emit {:.2}, filter {:.2}, probe {:.2}, hash-probe {:.2})\n",
            defaults.emit, defaults.filter, defaults.probe, defaults.hash_probe
        ));
    }
    let clamp = |w: f64| w.clamp(0.05, 8.0);
    let weights = CostWeights {
        emit: clamp(emit_t / probe_t),
        filter: clamp(filter_t / probe_t),
        probe: 1.0,
        hash_probe: clamp(hash_t / probe_t),
    };

    let mut out = format!("OPERATOR WEIGHTS — min of {runs} run(s), probe ≡ 1.0\n\n");
    for (label, t) in [
        ("scan-and-emit row", emit_t),
        ("filter evaluation", filter_t),
        ("index probe", probe_t),
        ("hash-bucket probe", hash_t),
    ] {
        out.push_str(&format!("{:<34} {:>10.1} ns/row\n", label, t * 1e9));
    }
    out.push_str(&format!(
        "\nsuggested cost weights: emit {:.2}, filter {:.2}, probe {:.2}, hash-probe {:.2} \
         (defaults: {:.2}/{:.2}/{:.2}/{:.2})\n",
        weights.emit,
        weights.filter,
        weights.probe,
        weights.hash_probe,
        defaults.emit,
        defaults.filter,
        defaults.probe,
        defaults.hash_probe,
    ));
    out.push_str(
        "feed them into an engine with QueryOptions::new().cost_weights(..) — they scale \
         the pipeline cost model behind the parallelize threshold\n",
    );
    Ok(out)
}

/// Parses engine labels for the CLI.
pub fn parse_engines(labels: &[String]) -> Result<Vec<EngineKind>, String> {
    labels
        .iter()
        .map(|l| EngineKind::from_label(l).ok_or_else(|| format!("unknown engine '{l}'")))
        .collect()
}

/// Parses query labels for the CLI.
pub fn parse_queries(labels: &[String]) -> Result<Vec<BenchQuery>, String> {
    labels
        .iter()
        .map(|l| BenchQuery::from_label(l).ok_or_else(|| format!("unknown query '{l}'")))
        .collect()
}

/// Parses a multi-user mix: each label may name a benchmark query
/// (Q1…Q12c) or an aggregation extension query (A1…A5).
pub fn parse_mix(labels: &[String]) -> Result<Vec<WorkItem>, String> {
    labels
        .iter()
        .map(|l| {
            if let Some(q) = BenchQuery::from_label(l) {
                return Ok(WorkItem::bench(q));
            }
            ExtQuery::ALL
                .iter()
                .find(|q| q.label().eq_ignore_ascii_case(l))
                .map(|&q| WorkItem::ext(q))
                .ok_or_else(|| format!("unknown query '{l}'"))
        })
        .collect()
}

/// The workload-model flags shared by every `sp2b multiuser` mode
/// (in-memory, `--store disk:DIR` and `--endpoint`): the template mix,
/// the arrival process, the warmup cutoff, the sampler seed and the
/// machine-readable report sink.
#[derive(Debug)]
pub struct WorkloadFlags {
    /// `--arrival closed|constant:R/s|poisson:R/s|burst:R,P,D` (default closed).
    pub arrival: Arrival,
    /// `--mix q1:80,q8:20` or `--zipf S`: templates plus weights. `None`
    /// keeps the legacy uniform rotation over `--queries`/the default mix.
    pub mix: Option<(Vec<WorkItem>, Vec<f64>)>,
    /// `--warmup SECS`: queries before the cutoff are excluded from every
    /// histogram and from count-stability tracking.
    pub warmup: Duration,
    /// `--seed N`: deterministic replay of mix sampling and arrivals.
    pub seed: Option<u64>,
    /// `--report json:FILE`: dump the open-loop report as JSON.
    pub report_path: Option<std::path::PathBuf>,
}

/// Parses and cross-validates the workload-model flags. Every
/// malformed or contradictory combination is a one-line hard error
/// (the CLI's shared strict-flag contract): `--mix` with `--zipf`,
/// either with `--queries`, a zero arrival rate, or a `--report` sink
/// without an open-loop arrival to fill it.
pub fn workload_flags(args: &crate::args::Args) -> Result<WorkloadFlags, String> {
    let arrival = match args.get("arrival") {
        None => Arrival::Closed,
        Some(spec) => {
            Arrival::parse(spec).map_err(|e| format!("invalid --arrival value '{spec}': {e}"))?
        }
    };
    if args.has("mix") && args.has("zipf") {
        return Err("--mix and --zipf both rank the template mix; pass one or the other".into());
    }
    if (args.has("mix") || args.has("zipf")) && args.has("queries") {
        return Err(
            "--queries names an unweighted rotation and cannot combine with --mix/--zipf; \
             fold the templates into the weighted mix instead"
                .into(),
        );
    }
    let mix = if let Some(spec) = args.get("mix") {
        let parsed =
            WeightedMix::parse(spec).map_err(|e| format!("invalid --mix value '{spec}': {e}"))?;
        Some((parsed.items, parsed.weights))
    } else if let Some(s) = args.get_f64_opt("zipf")? {
        let parsed =
            WeightedMix::zipf(s).map_err(|e| format!("invalid --zipf value '{s}': {e}"))?;
        Some((parsed.items, parsed.weights))
    } else {
        None
    };
    let warmup = Duration::from_secs(args.get_positive_opt("warmup")?.unwrap_or(0) as u64);
    let seed = args.get_u64_opt("seed")?;
    let report_path = match args.get("report") {
        None => None,
        Some(v) => match v.trim().strip_prefix("json:") {
            Some(path) if !path.is_empty() => {
                if !arrival.is_open() {
                    return Err("--report json:FILE dumps the open-loop workload report; \
                         pass an open arrival process (--arrival constant:R/s, \
                         poisson:R/s or burst:R,P,D) alongside it"
                        .into());
                }
                Some(std::path::PathBuf::from(path))
            }
            _ => {
                return Err(format!(
                    "invalid --report value '{v}'\nusage: --report json:FILE  \
                     (write the workload report as JSON to FILE)"
                ))
            }
        },
    };
    Ok(WorkloadFlags {
        arrival,
        mix,
        warmup,
        seed,
        report_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_small_exponents() {
        let t = table3(4);
        assert!(t.contains("1000"), "{t}");
        assert!(t.contains("10000"));
    }

    #[test]
    fn table8_has_all_rows() {
        let t = table8(&[5_000, 10_000]);
        for label in [
            "file size [MB]",
            "data up to",
            "#Tot.Auth.",
            "#Article",
            "#WWW",
        ] {
            assert!(t.contains(label), "missing {label}:\n{t}");
        }
    }

    #[test]
    fn fig2a_probabilities_are_plausible() {
        let t = fig2a(120_000);
        assert!(t.contains("gauss-fit"));
    }

    #[test]
    fn thread_scaling_smoke() {
        let t = thread_scaling(
            4_000,
            &[1, 2],
            Duration::from_secs(60),
            &[BenchQuery::Q1, BenchQuery::Q9],
        );
        assert!(t.contains("Q9"), "{t}");
        assert!(t.contains("t=2"), "{t}");
        assert!(t.contains("speedup"), "{t}");
    }

    #[test]
    fn table5_smoke() {
        let t = table5(&[4_000], Duration::from_secs(20));
        assert!(t.contains("Q12c"));
        // Q1 column exists with count 1 somewhere in the row.
        let row = t.lines().last().unwrap();
        assert!(row.contains('1'), "{t}");
    }

    #[test]
    fn ablation_smoke() {
        let t = ablation(4_000, Duration::from_secs(20));
        assert!(t.contains("no-reorder"));
        assert!(t.contains("spo-only"));
    }

    #[test]
    fn engine_and_query_parsing() {
        assert!(parse_engines(&["mem-opt".into(), "native-opt".into()]).is_ok());
        assert!(parse_engines(&["bogus".into()]).is_err());
        assert!(parse_queries(&["q1".into(), "Q12c".into()]).is_ok());
        assert!(parse_queries(&["q99".into()]).is_err());
    }

    #[test]
    fn mix_parsing_accepts_bench_and_ext_labels() {
        let mix = parse_mix(&["q1".into(), "A3".into(), "Q12c".into()]).unwrap();
        assert_eq!(mix.len(), 3);
        assert_eq!(mix[1].label, "A3");
        assert!(parse_mix(&["a9".into()]).is_err());
    }

    fn flags(s: &str) -> Result<WorkloadFlags, String> {
        workload_flags(&crate::args::Args::parse(
            s.split_whitespace().map(String::from),
        ))
    }

    #[test]
    fn workload_flags_defaults_to_the_closed_loop() {
        let f = flags("multiuser --clients 4").unwrap();
        assert_eq!(f.arrival, Arrival::Closed);
        assert!(f.mix.is_none());
        assert_eq!(f.warmup, Duration::ZERO);
        assert_eq!(f.seed, None);
        assert!(f.report_path.is_none());
    }

    #[test]
    fn workload_flags_parses_the_full_open_loop_spelling() {
        let f = flags(
            "multiuser --arrival poisson:200/s --mix q1:90,q8:10 \
             --warmup 5 --seed 42 --report json:out.json",
        )
        .unwrap();
        assert_eq!(f.arrival, Arrival::Poisson { rate: 200.0 });
        let (items, weights) = f.mix.unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].label, "Q1");
        assert_eq!(weights, [90.0, 10.0]);
        assert_eq!(f.warmup, Duration::from_secs(5));
        assert_eq!(f.seed, Some(42));
        assert_eq!(f.report_path.unwrap(), std::path::PathBuf::from("out.json"));
    }

    #[test]
    fn workload_flags_zipf_ranks_the_default_mix() {
        let f = flags("multiuser --arrival constant:50/s --zipf 1.0").unwrap();
        let (items, weights) = f.mix.unwrap();
        assert_eq!(items.len(), weights.len());
        assert!(weights.windows(2).all(|w| w[0] >= w[1]), "{weights:?}");
    }

    #[test]
    fn workload_flags_rejects_contradictions_and_garbage() {
        // --mix + --zipf pick the mix twice.
        let err = flags("multiuser --mix q1:1 --zipf 1.0").unwrap_err();
        assert!(err.contains("--mix and --zipf"), "{err}");
        // --queries is the unweighted rotation; it cannot co-exist.
        let err = flags("multiuser --mix q1:1 --queries q1,q2").unwrap_err();
        assert!(err.contains("--queries"), "{err}");
        assert!(flags("multiuser --zipf 1.0 --queries q1").is_err());
        // Malformed mixes: zero weight, unknown template, duplicates.
        for bad in ["q1:0", "q99:5", "q1:5,q1:5", "q1", "q1:three", ""] {
            let err = flags(&format!("multiuser --mix {bad} --x")).unwrap_err();
            assert!(err.contains("invalid --mix"), "{bad}: {err}");
        }
        // Zero arrival rate and unknown processes are hard errors.
        for bad in [
            "constant:0/s",
            "poisson:-5/s",
            "uniform:10/s",
            "burst:10,0,0.5",
        ] {
            let err = flags(&format!("multiuser --arrival {bad}")).unwrap_err();
            assert!(err.contains("invalid --arrival"), "{bad}: {err}");
        }
        // --report needs an open arrival and the json:FILE spelling.
        let err = flags("multiuser --report json:out.json").unwrap_err();
        assert!(err.contains("open-loop"), "{err}");
        let err = flags("multiuser --arrival poisson:10/s --report out.json").unwrap_err();
        assert!(err.contains("invalid --report value 'out.json'"), "{err}");
        assert!(flags("multiuser --arrival poisson:10/s --report json:").is_err());
        // Warmup and zipf share the strict numeric contracts.
        assert!(flags("multiuser --warmup 0").is_err());
        assert!(flags("multiuser --zipf -1").is_err());
    }
}
