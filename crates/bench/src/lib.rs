//! # sp2b-bench — harness utilities shared by the `sp2b` CLI and the
//! criterion benchmarks.

pub mod args;
pub mod experiments;

pub use args::Args;
