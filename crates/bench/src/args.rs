//! A small dependency-free flag parser for the `sp2b` CLI.

use std::collections::BTreeMap;

/// Parsed command line: positional arguments + `--key value` /
/// `--flag` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Options: `--key value` → key→value; bare `--flag` → key→"".
    pub options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                out.options.insert(key.to_owned(), value);
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Presence of a flag (with or without value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Parsed numeric option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).and_then(parse_scaled).unwrap_or(default)
    }

    /// Comma-separated list option.
    pub fn get_list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key).map(|v| {
            v.split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect()
        })
    }
}

/// Parses "250k", "1M", "5m", "1000000".
pub fn parse_scaled(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(rest) = s.strip_suffix(['k', 'K']) {
        return rest.parse::<u64>().ok().map(|v| v * 1_000);
    }
    if let Some(rest) = s.strip_suffix(['m', 'M']) {
        return rest.parse::<u64>().ok().map(|v| v * 1_000_000);
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn positional_and_options() {
        let a = args("table4 --sizes 10k,50k --timeout 30 --verbose");
        assert_eq!(a.positional, ["table4"]);
        assert_eq!(a.get("sizes"), Some("10k,50k"));
        assert_eq!(a.get_u64("timeout", 5), 30);
        assert!(a.has("verbose"));
        assert!(!a.has("nope"));
    }

    #[test]
    fn scaled_numbers() {
        assert_eq!(parse_scaled("10k"), Some(10_000));
        assert_eq!(parse_scaled("1M"), Some(1_000_000));
        assert_eq!(parse_scaled("5m"), Some(5_000_000));
        assert_eq!(parse_scaled("123"), Some(123));
        assert_eq!(parse_scaled("abc"), None);
    }

    #[test]
    fn list_option() {
        let a = args("x --engines mem-opt, native-opt");
        // NB: the space splits tokens; only the first lands in the value.
        assert_eq!(a.get_list("engines").unwrap(), ["mem-opt"]);
        let a = args("x --engines mem-opt,native-opt");
        assert_eq!(a.get_list("engines").unwrap(), ["mem-opt", "native-opt"]);
    }
}
