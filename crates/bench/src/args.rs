//! A small dependency-free flag parser for the `sp2b` CLI.

use std::collections::BTreeMap;

/// Parsed command line: positional arguments + `--key value` /
/// `--flag` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Options: `--key value` → key→value; bare `--flag` → key→"".
    pub options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                out.options.insert(key.to_owned(), value);
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Presence of a flag (with or without value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Parsed numeric option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).and_then(parse_scaled).unwrap_or(default)
    }

    /// Strictly validated positive-integer option: absent → `Ok(None)`;
    /// present but malformed **or zero** → `Err` with a usage message.
    /// This is the contract shared by `--threads`- and `--clients`-style
    /// options, where a silent fallback would quietly benchmark the
    /// wrong configuration.
    pub fn get_positive_opt(&self, key: &str) -> Result<Option<usize>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(format!(
                    "invalid --{key} value '{v}'\nusage: --{key} N  (a positive integer)"
                )),
            },
        }
    }

    /// Like [`Args::get_positive_opt`] with a default for the absent case.
    pub fn get_positive(&self, key: &str, default: usize) -> Result<usize, String> {
        Ok(self.get_positive_opt(key)?.unwrap_or(default))
    }

    /// Strictly validated socket-address option (`IP:PORT`): absent →
    /// `default`; present but malformed → hard usage error (same
    /// contract as [`Args::get_positive_opt`] — a server must never
    /// silently bind somewhere the operator did not ask for).
    pub fn get_addr(&self, key: &str, default: &str) -> Result<std::net::SocketAddr, String> {
        let value = self.get(key).unwrap_or(default);
        value.trim().parse().map_err(|_| {
            format!(
                "invalid --{key} value '{value}'\nusage: --{key} IP:PORT  (e.g. 127.0.0.1:8088)"
            )
        })
    }

    /// Strictly validated persistent-store option: `--store disk:DIR`
    /// names a segment directory written by `sp2b save`. Absent →
    /// `Ok(None)` (load or generate as usual); a missing `disk:` scheme
    /// or an empty path is a hard usage error (the shared strict-flag
    /// contract — never silently run against a store the operator did
    /// not name).
    pub fn get_store_dir(&self) -> Result<Option<std::path::PathBuf>, String> {
        match self.get("store") {
            None => Ok(None),
            Some(v) => match v.trim().strip_prefix("disk:") {
                Some(path) if !path.is_empty() => Ok(Some(std::path::PathBuf::from(path))),
                _ => Err(format!(
                    "invalid --store value '{v}'\nusage: --store disk:DIR  \
                     (a segment directory written by `sp2b save`)"
                )),
            },
        }
    }

    /// Strictly validated byte-size option (`--cache-bytes 64k`):
    /// absent → `Ok(None)`; present but malformed **or zero** → `Err`
    /// with a usage message (the shared strict-flag contract — a cache
    /// budget of zero or a typo'd size must never silently fall back to
    /// the default). Accepts the same `k`/`M` suffixes as `--sizes`.
    pub fn get_bytes_opt(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match parse_scaled(v) {
                Some(n) if n > 0 => Ok(Some(n)),
                _ => Err(format!(
                    "invalid --{key} value '{v}'\nusage: --{key} BYTES  \
                     (a positive byte count; k/M suffixes allowed, e.g. 64k)"
                )),
            },
        }
    }

    /// Strictly validated positive-float option (`--zipf 1.5`): absent
    /// → `Ok(None)`; present but malformed, non-finite **or
    /// non-positive** → `Err` with a usage message (the shared
    /// strict-flag contract).
    pub fn get_f64_opt(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match v.trim().parse::<f64>() {
                Ok(x) if x.is_finite() && x > 0.0 => Ok(Some(x)),
                _ => Err(format!(
                    "invalid --{key} value '{v}'\nusage: --{key} X  (a positive number)"
                )),
            },
        }
    }

    /// Strictly validated u64 option (`--seed 42`): absent → `Ok(None)`;
    /// present but malformed → `Err` with a usage message. Unlike
    /// [`Args::get_u64`] there is no silent default — a seed typo must
    /// never quietly run an unintended replay.
    pub fn get_u64_opt(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match v.trim().parse::<u64>() {
                Ok(n) => Ok(Some(n)),
                _ => Err(format!(
                    "invalid --{key} value '{v}'\nusage: --{key} N  (a non-negative integer)"
                )),
            },
        }
    }

    /// Comma-separated list option.
    pub fn get_list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key).map(|v| {
            v.split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect()
        })
    }
}

/// Parses "250k", "1M", "5m", "1000000".
pub fn parse_scaled(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(rest) = s.strip_suffix(['k', 'K']) {
        return rest.parse::<u64>().ok().map(|v| v * 1_000);
    }
    if let Some(rest) = s.strip_suffix(['m', 'M']) {
        return rest.parse::<u64>().ok().map(|v| v * 1_000_000);
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn positional_and_options() {
        let a = args("table4 --sizes 10k,50k --timeout 30 --verbose");
        assert_eq!(a.positional, ["table4"]);
        assert_eq!(a.get("sizes"), Some("10k,50k"));
        assert_eq!(a.get_u64("timeout", 5), 30);
        assert!(a.has("verbose"));
        assert!(!a.has("nope"));
    }

    #[test]
    fn scaled_numbers() {
        assert_eq!(parse_scaled("10k"), Some(10_000));
        assert_eq!(parse_scaled("1M"), Some(1_000_000));
        assert_eq!(parse_scaled("5m"), Some(5_000_000));
        assert_eq!(parse_scaled("123"), Some(123));
        assert_eq!(parse_scaled("abc"), None);
    }

    #[test]
    fn positive_options_hard_error_on_malformed_and_zero() {
        let a = args("multiuser --clients 4 --threads 2");
        assert_eq!(a.get_positive("clients", 1), Ok(4));
        assert_eq!(a.get_positive_opt("threads"), Ok(Some(2)));
        // Absent: default / None.
        assert_eq!(a.get_positive("duration", 30), Ok(30));
        assert_eq!(a.get_positive_opt("duration"), Ok(None));
        // Zero is a hard error, not "treated as 1".
        let zero = args("multiuser --clients 0");
        let err = zero.get_positive("clients", 4).unwrap_err();
        assert!(err.contains("invalid --clients value '0'"), "{err}");
        assert!(err.contains("usage:"), "{err}");
        // Malformed is a hard error, not a silent default.
        let bad = args("multiuser --threads four");
        let err = bad.get_positive_opt("threads").unwrap_err();
        assert!(err.contains("invalid --threads value 'four'"), "{err}");
        // Negative numbers don't parse as usize either.
        let neg = args("multiuser --clients -3");
        assert!(neg.get_positive("clients", 4).is_err());
    }

    #[test]
    fn addr_option_hard_errors_on_malformed_values() {
        let a = args("serve --addr 0.0.0.0:9001");
        assert_eq!(
            a.get_addr("addr", "127.0.0.1:8088"),
            Ok("0.0.0.0:9001".parse().unwrap())
        );
        // Absent: the default applies.
        assert_eq!(
            a.get_addr("bind", "127.0.0.1:8088"),
            Ok("127.0.0.1:8088".parse().unwrap())
        );
        // Malformed values (no port, bad port, hostname) are hard errors.
        for bad in ["127.0.0.1", "localhost:8088", "1.2.3.4:notaport", ":-1"] {
            let a = Args::parse(["serve".into(), "--addr".into(), bad.to_owned()]);
            let err = a.get_addr("addr", "127.0.0.1:8088").unwrap_err();
            assert!(
                err.contains(&format!("invalid --addr value '{bad}'")),
                "{err}"
            );
            assert!(err.contains("usage:"), "{err}");
        }
    }

    #[test]
    fn timeout_follows_the_positive_option_contract() {
        // `--timeout` shares get_positive: absent → default, malformed
        // or zero → hard error (no silent 30 s fallback).
        let a = args("bench --timeout 45");
        assert_eq!(a.get_positive("timeout", 30), Ok(45));
        assert_eq!(args("bench").get_positive("timeout", 30), Ok(30));
        for bad in ["0", "soon", "-5", "1.5"] {
            let a = Args::parse(["bench".into(), "--timeout".into(), bad.to_owned()]);
            let err = a.get_positive("timeout", 30).unwrap_err();
            assert!(
                err.contains(&format!("invalid --timeout value '{bad}'")),
                "{err}"
            );
        }
    }

    #[test]
    fn store_option_accepts_disk_dirs_and_hard_errors_otherwise() {
        let a = args("query Q1 --store disk:segs/50k");
        assert_eq!(
            a.get_store_dir(),
            Ok(Some(std::path::PathBuf::from("segs/50k")))
        );
        // Absent → None: load or generate as usual.
        assert_eq!(args("query Q1").get_store_dir(), Ok(None));
        // Empty path, unknown scheme or a bare path: hard usage errors,
        // never a silent in-memory fallback.
        for bad in ["disk:", "mem:segs", "segs", "disk"] {
            let a = Args::parse(["query".into(), "--store".into(), bad.to_owned()]);
            let err = a.get_store_dir().unwrap_err();
            assert!(
                err.contains(&format!("invalid --store value '{bad}'")),
                "{err}"
            );
            assert!(err.contains("usage: --store disk:DIR"), "{err}");
        }
    }

    #[test]
    fn bytes_option_scales_and_hard_errors_on_zero_or_garbage() {
        let a = args("smoke --store disk:segs --cache-bytes 64k");
        assert_eq!(a.get_bytes_opt("cache-bytes"), Ok(Some(64_000)));
        assert_eq!(
            args("smoke --cache-bytes 2M").get_bytes_opt("cache-bytes"),
            Ok(Some(2_000_000))
        );
        assert_eq!(
            args("smoke --cache-bytes 4096").get_bytes_opt("cache-bytes"),
            Ok(Some(4096))
        );
        // Absent: None — the store picks its size-proportional default.
        assert_eq!(args("smoke").get_bytes_opt("cache-bytes"), Ok(None));
        // Zero and garbage are hard errors, never a silent default.
        for bad in ["0", "lots", "-1", "1.5M"] {
            let a = Args::parse(["smoke".into(), "--cache-bytes".into(), bad.to_owned()]);
            let err = a.get_bytes_opt("cache-bytes").unwrap_err();
            assert!(
                err.contains(&format!("invalid --cache-bytes value '{bad}'")),
                "{err}"
            );
            assert!(err.contains("usage:"), "{err}");
        }
    }

    #[test]
    fn float_option_hard_errors_on_garbage_zero_and_negative() {
        assert_eq!(
            args("multiuser --zipf 1.5").get_f64_opt("zipf"),
            Ok(Some(1.5))
        );
        assert_eq!(args("multiuser").get_f64_opt("zipf"), Ok(None));
        for bad in ["0", "-1", "steep", "inf", "nan"] {
            let a = Args::parse(["multiuser".into(), "--zipf".into(), bad.to_owned()]);
            let err = a.get_f64_opt("zipf").unwrap_err();
            assert!(
                err.contains(&format!("invalid --zipf value '{bad}'")),
                "{err}"
            );
            assert!(err.contains("usage:"), "{err}");
        }
    }

    #[test]
    fn u64_option_hard_errors_on_malformed_values() {
        assert_eq!(
            args("multiuser --seed 42").get_u64_opt("seed"),
            Ok(Some(42))
        );
        assert_eq!(args("multiuser --seed 0").get_u64_opt("seed"), Ok(Some(0)));
        assert_eq!(args("multiuser").get_u64_opt("seed"), Ok(None));
        for bad in ["-1", "1.5", "abc"] {
            let a = Args::parse(["multiuser".into(), "--seed".into(), bad.to_owned()]);
            let err = a.get_u64_opt("seed").unwrap_err();
            assert!(
                err.contains(&format!("invalid --seed value '{bad}'")),
                "{err}"
            );
        }
    }

    #[test]
    fn list_option() {
        let a = args("x --engines mem-opt, native-opt");
        // NB: the space splits tokens; only the first lands in the value.
        assert_eq!(a.get_list("engines").unwrap(), ["mem-opt"]);
        let a = args("x --engines mem-opt,native-opt");
        assert_eq!(a.get_list("engines").unwrap(), ["mem-opt", "native-opt"]);
    }
}
