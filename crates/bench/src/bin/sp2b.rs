//! `sp2b` — the SP²Bench command-line harness.
//!
//! One subcommand per paper experiment (DESIGN.md §6):
//!
//! ```text
//! sp2b gen      --triples 50k [--seed N] --out doc.nt     generate a document
//! sp2b table3   [--max-exp 7]                             generator scaling
//! sp2b table8   [--sizes 10k,50k,250k,1M]                 document characteristics
//! sp2b table5   [--sizes …] [--timeout 60]                query result sizes
//! sp2b bench    [--sizes …] [--timeout 30] [--runs 3]     full protocol →
//!               [--engines mem-naive,…] [--queries q1,…]  tables IV/V/VI/VII + figures
//! sp2b fig2a    [--triples 250k]                          citation distribution
//! sp2b fig2b    [--year 1980]                             class instances per year
//! sp2b fig2c    [--year 1985] [--years 1955,1965,…]       publications power law
//! sp2b ablation [--triples 50k] [--timeout 30]            optimizer/index ablation
//! sp2b scaling  [--triples 50k] [--threads 1,2,4,8]       thread-scaling speedups
//! sp2b smoke    [--triples 5k] [--threads 4]              generate → load → all queries
//! sp2b multiuser --clients 8 [--threads 2] [--duration 30] N concurrent clients, mixed
//!               [--triples 50k] [--queries q1,a1,…]       workload → latency/throughput
//! sp2b query    Q4 [--triples 50k] [--engine native-opt]  run one query, print rows
//! ```
//!
//! `run`, `query`, `smoke` and the experiments accept `--threads N` to
//! pin the degree of morsel-driven parallelism (default: all cores;
//! `--threads 1` is strictly single-threaded evaluation).

use std::process::ExitCode;
use std::time::Duration;

use sp2b_bench::experiments::{self, DEFAULT_SIZES};
use sp2b_bench::Args;
use sp2b_core::multiuser::StopCondition;
use sp2b_core::report;
use sp2b_core::runner::{run_benchmark, MixedWorkloadConfig, RunnerConfig};
use sp2b_core::{measure, BenchQuery, Engine, EngineKind};
use sp2b_datagen::{generate_graph, generate_to_path, Config};
use sp2b_sparql::{Error as SparqlError, Prepared, QueryEngine};

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let Some(command) = args.positional.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command {
        "gen" => cmd_gen(&args),
        "table3" => {
            println!("{}", experiments::table3(args.get_u64("max-exp", 7) as u32));
            Ok(())
        }
        "table8" => {
            println!("{}", experiments::table8(&sizes(&args)));
            Ok(())
        }
        "table5" => {
            println!("{}", experiments::table5(&sizes(&args), timeout(&args, 60)));
            Ok(())
        }
        "bench" => cmd_bench(&args),
        "fig2a" => {
            println!("{}", experiments::fig2a(args.get_u64("triples", 250_000)));
            Ok(())
        }
        "fig2b" => {
            println!("{}", experiments::fig2b(args.get_u64("year", 1980) as i32));
            Ok(())
        }
        "fig2c" => cmd_fig2c(&args),
        "ablation" => {
            println!(
                "{}",
                experiments::ablation(args.get_u64("triples", 50_000), timeout(&args, 30))
            );
            Ok(())
        }
        "scaling" => cmd_scaling(&args),
        "smoke" => cmd_smoke(&args),
        "multiuser" => cmd_multiuser(&args),
        "query" => cmd_query(&args),
        "ext" => cmd_ext(&args),
        "run" => cmd_run(&args),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sp2b: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: sp2b <gen|table3|table5|table8|bench|fig2a|fig2b|fig2c|ablation|scaling|smoke|multiuser|query|ext|run> [options]
run `sp2b bench` for the full paper protocol, `sp2b multiuser --clients N --threads K --duration S`
for the concurrent-client workload; see crate docs for options";

fn sizes(args: &Args) -> Vec<u64> {
    match args.get_list("sizes") {
        Some(list) => list
            .iter()
            .filter_map(|s| sp2b_bench::args::parse_scaled(s))
            .collect(),
        None => DEFAULT_SIZES.to_vec(),
    }
}

fn timeout(args: &Args, default_secs: u64) -> Duration {
    Duration::from_secs(args.get_u64("timeout", default_secs))
}

/// The `--threads` flag: `Ok(None)` keeps the engine default (all
/// cores); a malformed or zero value is a hard error with a usage
/// message, never a silent fallback (see `Args::get_positive_opt`).
fn threads(args: &Args) -> Result<Option<usize>, String> {
    args.get_positive_opt("threads")
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let n = args.get_u64("triples", 10_000);
    let seed = args.get_u64("seed", sp2b_datagen::Rng::DEFAULT_SEED);
    let out = args.get("out").unwrap_or("sp2bench.nt");
    let cfg = Config::triples(n).with_seed(seed);
    let stats = generate_to_path(cfg, std::path::Path::new(out)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} triples ({} bytes) up to year {} to {out}",
        stats.triples,
        stats.bytes.unwrap_or(0),
        stats.end_year
    );
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let mut cfg = RunnerConfig::paper_defaults();
    cfg.scales = sizes(args);
    cfg.timeout = timeout(args, 30);
    cfg.runs = args.get_u64("runs", 3) as usize;
    if let Some(labels) = args.get_list("engines") {
        cfg.engines = experiments::parse_engines(&labels)?;
    }
    if let Some(labels) = args.get_list("queries") {
        cfg.queries = experiments::parse_queries(&labels)?;
    }
    let quiet = args.has("quiet");
    let report = run_benchmark(&cfg, |line| {
        if !quiet {
            eprintln!("{line}");
        }
    });
    println!("{}", report::full_report(&report));
    Ok(())
}

fn cmd_fig2c(args: &Args) -> Result<(), String> {
    let year = args.get_u64("year", 1985) as i32;
    let years: Vec<i32> = match args.get_list("years") {
        Some(list) => list.iter().filter_map(|s| s.parse().ok()).collect(),
        None => vec![1955, 1965, 1975, 1985],
    };
    println!("{}", experiments::fig2c(year, &years));
    Ok(())
}

/// Streams a prepared query through `engine`, printing up to `limit` rows
/// (indented by `indent`) while the remainder is only counted — the tail
/// never decodes a term. Returns `(total, shown)`.
fn stream_rows(
    engine: &QueryEngine,
    prepared: &Prepared,
    limit: usize,
    indent: &str,
) -> Result<(u64, usize), SparqlError> {
    println!("{indent}{}", prepared.variables().join("\t"));
    let mut total: u64 = 0;
    let mut shown = 0usize;
    for solution in engine.solutions(prepared) {
        let solution = solution?;
        total += 1;
        if shown < limit {
            let line: Vec<String> = (0..solution.len())
                .map(|i| solution.get(i).map_or("-".into(), |t| t.to_string()))
                .collect();
            println!("{indent}{}", line.join("\t"));
            shown += 1;
        }
    }
    Ok((total, shown))
}

/// Thread-scaling experiment: speedup per query as `--threads` grows.
fn cmd_scaling(args: &Args) -> Result<(), String> {
    let n = args.get_u64("triples", 50_000);
    let thread_counts: Vec<usize> = match args.get_list("threads") {
        Some(list) => list
            .iter()
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("invalid --threads value '{s}' (expected a number)"))
            })
            .collect::<Result<_, String>>()?,
        None => vec![1, 2, 4, 8],
    };
    if thread_counts.is_empty() {
        return Err("provide at least one thread count, e.g. --threads 1,2,4".into());
    }
    let queries = match args.get_list("queries") {
        Some(labels) => experiments::parse_queries(&labels)?,
        None => BenchQuery::ALL.to_vec(),
    };
    println!(
        "{}",
        experiments::thread_scaling(n, &thread_counts, timeout(args, 60), &queries)
    );
    Ok(())
}

/// Tiny end-to-end smoke: generate → load → execute (count) every
/// benchmark and extension query at the requested thread count. Exits
/// nonzero on any parse error, evaluation error or timeout — the CI job
/// runs this at `--threads 1` and `--threads 4` so both the sequential
/// and the morsel-parallel paths are exercised on every push.
fn cmd_smoke(args: &Args) -> Result<(), String> {
    let n = args.get_u64("triples", 5_000);
    let t = threads(args)?;
    let (graph, _) = generate_graph(Config::triples(n));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let qe = engine.query_engine_with(Some(timeout(args, 120)), t);
    let mut texts: Vec<(&'static str, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label(), q.text()))
        .collect();
    texts.extend(
        sp2b_core::ExtQuery::ALL
            .iter()
            .map(|q| (q.label(), q.text())),
    );
    println!(
        "smoke: {n} triples, threads = {}",
        t.map_or("default".to_owned(), |t| t.to_string())
    );
    for (label, text) in texts {
        let prepared = qe.prepare(text).map_err(|e| format!("{label}: {e}"))?;
        let (counted, m) = measure(|| qe.count(&prepared));
        let count = counted.map_err(|e| format!("{label}: {e}"))?;
        println!("  {label:<5} {count:>10} solutions ({})", m.summary());
    }
    Ok(())
}

/// The multi-user mixed workload (paper Section VII's "multi-user
/// scenario"): N client threads share one loaded store, each cycling a
/// mix of Q1–Q12/A1–A5 at its own rotation offset, reporting per-client
/// p50/p95/p99 latency and aggregate queries/sec. `--clients`,
/// `--threads` (per-query parallelism) and `--duration`/`--rounds` are
/// strictly validated: malformed or zero values are hard errors.
fn cmd_multiuser(args: &Args) -> Result<(), String> {
    let clients = args.get_positive("clients", 4)?;
    let parallelism = args.get_positive("threads", 1)?;
    let stop = match args.get_positive_opt("rounds")? {
        Some(rounds) => StopCondition::Rounds(rounds as u32),
        None => StopCondition::Duration(Duration::from_secs(
            args.get_positive("duration", 30)? as u64
        )),
    };
    let triples = args.get_u64("triples", 50_000);
    let mut cfg = MixedWorkloadConfig::new(triples, clients, stop);
    if let Some(label) = args.get("engine") {
        cfg.engine =
            EngineKind::from_label(label).ok_or_else(|| format!("unknown engine '{label}'"))?;
    }
    cfg.multiuser.parallelism = parallelism;
    cfg.multiuser.timeout = timeout(args, 30);
    if let Some(labels) = args.get_list("queries") {
        cfg.multiuser.mix = experiments::parse_mix(&labels)?;
    }
    let quiet = args.has("quiet");
    let report = sp2b_core::run_mixed_workload(&cfg, |line| {
        if !quiet {
            eprintln!("{line}");
        }
    });
    println!("{}", report::mixed_workload_report(&report));
    Ok(())
}

/// Runs the A1–A5 aggregate extension queries (Section VII's
/// "aggregation support" future work) and prints their result heads.
fn cmd_ext(args: &Args) -> Result<(), String> {
    let n = args.get_u64("triples", 50_000);
    let limit = args.get_u64("limit", 10) as usize;
    let (graph, _) = generate_graph(Config::triples(n));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let qe = engine.query_engine_with(Some(timeout(args, 300)), threads(args)?);
    for q in sp2b_core::ExtQuery::ALL {
        let prepared = qe.prepare(q.text()).map_err(|e| format!("{q}: {e}"))?;
        println!("\n{q}:");
        let (streamed, m) = measure(|| stream_rows(&qe, &prepared, limit, "  "));
        match streamed {
            Ok((total, shown)) => {
                println!("  {total} groups ({})", m.summary());
                if total > shown as u64 {
                    println!("  … ({} more groups)", total - shown as u64);
                }
            }
            Err(SparqlError::Cancelled) => println!("{q}: timeout"),
            Err(e) => return Err(format!("{q}: {e}")),
        }
    }
    Ok(())
}

/// Runs arbitrary SPARQL (from `--query-file` or inline after `run`)
/// against an N-Triples document (`--data FILE`) or freshly generated
/// data (`--triples N`).
fn cmd_run(args: &Args) -> Result<(), String> {
    let text = match (args.get("query-file"), args.positional.get(1)) {
        (Some(path), _) => std::fs::read_to_string(path).map_err(|e| e.to_string())?,
        (None, Some(inline)) => inline.clone(),
        (None, None) => {
            return Err("provide a query: `sp2b run 'SELECT …'` or --query-file q.rq".into())
        }
    };
    let engine_kind = match args.get("engine") {
        Some(l) => EngineKind::from_label(l).ok_or_else(|| format!("unknown engine '{l}'"))?,
        None => EngineKind::NativeOpt,
    };
    let graph = match args.get("data") {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
            let reader = std::io::BufReader::with_capacity(1 << 16, file);
            let triples: Result<Vec<_>, _> = sp2b_rdf::ntriples::Parser::new(reader).collect();
            triples.map_err(|e| e.to_string())?.into_iter().collect()
        }
        None => generate_graph(Config::triples(args.get_u64("triples", 50_000))).0,
    };
    let engine = Engine::load(engine_kind, &graph);
    let limit = args.get_u64("limit", 50) as usize;
    let qe = engine.query_engine_with(Some(timeout(args, 300)), threads(args)?);
    let prepared = qe.prepare(&text).map_err(|e| e.to_string())?;
    if prepared.is_ask() {
        let (result, m) = measure(|| qe.execute(&prepared));
        let r = result.map_err(|e| format!("{e} ({})", m.summary()))?;
        println!(
            "{}",
            if r.as_bool() == Some(true) {
                "yes"
            } else {
                "no"
            }
        );
        return Ok(());
    }
    // Stream: the first `limit` rows decode and print; the rest are only
    // counted (no materialization, memory stays flat).
    let (streamed, m) = measure(|| stream_rows(&qe, &prepared, limit, ""));
    let (total, shown) = streamed.map_err(|e| format!("{} ({})", describe(e), m.summary()))?;
    eprintln!("{total} solutions in {}", m.summary());
    if total > shown as u64 {
        eprintln!("… ({} more rows; raise --limit)", total - shown as u64);
    }
    Ok(())
}

/// Human phrasing for streaming errors on the CLI.
fn describe(e: SparqlError) -> String {
    match e {
        SparqlError::Cancelled => "query timed out".to_owned(),
        other => other.to_string(),
    }
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let label = args
        .positional
        .get(1)
        .ok_or("query label required, e.g. `sp2b query Q4`")?;
    let query = BenchQuery::from_label(label).ok_or_else(|| format!("unknown query '{label}'"))?;
    let n = args.get_u64("triples", 50_000);
    let engine_kind = match args.get("engine") {
        Some(l) => EngineKind::from_label(l).ok_or_else(|| format!("unknown engine '{l}'"))?,
        None => EngineKind::NativeOpt,
    };
    let limit = args.get_u64("limit", 20);

    let (graph, _) = generate_graph(Config::triples(n));
    let engine = Engine::load(engine_kind, &graph);
    let qe = engine.query_engine_with(Some(timeout(args, 300)), threads(args)?);
    let prepared = qe.prepare(query.text()).map_err(|e| e.to_string())?;
    if prepared.is_ask() {
        let (result, m) = measure(|| qe.execute(&prepared));
        let r = result.map_err(|e| format!("{query}: {e} ({})", m.summary()))?;
        println!(
            "{query} on {n} triples via {engine_kind}: answer {} ({})",
            if r.as_bool() == Some(true) {
                "yes"
            } else {
                "no"
            },
            m.summary()
        );
        return Ok(());
    }
    let (streamed, m) = measure(|| stream_rows(&qe, &prepared, limit as usize, ""));
    let (total, shown) =
        streamed.map_err(|e| format!("{query}: {} ({})", describe(e), m.summary()))?;
    println!(
        "{query} on {n} triples via {engine_kind}: {total} solutions ({})",
        m.summary()
    );
    if total > shown as u64 {
        println!("… ({} more rows)", total - shown as u64);
    }
    Ok(())
}
