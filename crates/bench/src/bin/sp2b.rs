//! `sp2b` — the SP²Bench command-line harness.
//!
//! One subcommand per paper experiment (DESIGN.md §6), plus the server:
//!
//! ```text
//! sp2b gen      --triples 50k [--seed N] --out doc.nt     generate a document
//! sp2b save     --out DIR [--triples 50k|--data F]        write checksummed on-disk
//!               [--seed N] [--shards N] [--shard-by …]    segments for --store disk:DIR
//! sp2b table3   [--max-exp 7]                             generator scaling
//! sp2b table8   [--sizes 10k,50k,250k,1M]                 document characteristics
//! sp2b table5   [--sizes …] [--timeout 60]                query result sizes
//! sp2b bench    [--sizes …] [--timeout 30] [--runs 3]     full protocol →
//!               [--engines mem-naive,…] [--queries q1,…]  tables IV/V/VI/VII + figures
//! sp2b fig2a    [--triples 250k]                          citation distribution
//! sp2b fig2b    [--year 1980]                             class instances per year
//! sp2b fig2c    [--year 1985] [--years 1955,1965,…]       publications power law
//! sp2b ablation [--triples 50k] [--timeout 30]            optimizer/index ablation
//! sp2b scaling  [--triples 50k] [--threads 1,2,4,8]       thread-scaling speedups
//! sp2b calibrate [--triples 20k] [--threads 2] [--runs 3] measure per-morsel overhead →
//!                                                         suggested parallel_threshold base
//! sp2b smoke    [--triples 5k] [--threads 4] [--shards N] generate → load → all queries
//!               [--store disk:DIR [--cache-bytes 64k]]    …or against saved segments with
//!                                                         a pinned block-cache budget
//! sp2b serve    [--addr 127.0.0.1:8088] [--threads 4]     SPARQL protocol endpoint over
//!               [--timeout 30] [--triples 50k|--data F]   one shared store (HTTP/1.1)
//!               [--duration S] [--parallelism N]          …plus GET /metrics (Prometheus)
//!               [--queue 1024] [--shards N]               503-shedding accept bound, sharding
//!               [--slow-ms N]                             log queries slower than N ms
//! sp2b multiuser --clients 8 [--threads 2] [--duration 30] N concurrent clients, mixed
//!               [--triples 50k] [--queries q1,a1,…]       workload → latency/throughput
//!               [--mix q1:80,q8:20 | --zipf S] [--seed N] weighted/Zipfian template mix,
//!               [--arrival closed|constant:R/s|           deterministic replay; open-loop
//!                poisson:R/s|burst:R,P,D]                 arrivals with intended-send-time
//!               [--warmup SECS] [--report json:FILE]      (CO-safe) latency, warmup cutoff,
//!               [--shards N] [--checksums]                machine-readable report dump,
//!               [--endpoint http://host:port/sparql]      …over real sockets instead
//! sp2b query    Q4 [--triples 50k] [--engine native-opt]  run one query, print rows
//!               [--format table|json|csv|tsv] [--explain] …and the join order with
//!               [--trace]                                 estimated vs actual rows, or the
//!                                                         full per-operator time breakdown
//! ```
//!
//! `run`, `query`, `smoke` and the experiments accept `--threads N` to
//! pin the degree of morsel-driven parallelism (default: all cores;
//! `--threads 1` is strictly single-threaded evaluation), and `run`,
//! `query`, `serve`, `multiuser` and `smoke` accept
//! `--shards N [--shard-by subject|pso]` to load the document into a
//! hash-partitioned sharded store (parallel per-shard index build,
//! shard-parallel scans). `run`, `query`, `serve`, `multiuser` and
//! `smoke` also accept `--store disk:DIR` to reopen a segment directory
//! written by `sp2b save` instead of loading or generating a document —
//! open is O(header + dictionary + block index); scans pull fixed-size
//! blocks of the sorted runs through a shared LRU cache whose byte
//! budget `--cache-bytes BYTES` pins (default: a quarter of the run
//! payload), so a document larger than RAM serves at bounded resident
//! memory. `run` and `query` accept `--explain` to print the chosen BGP
//! join order with each pattern's estimated cardinality next to the
//! rows it actually emitted (and whether store statistics or the
//! fixed-discount heuristic ordered it), and `--trace` for the fuller
//! per-query breakdown: phase timings (prepare/execute) plus each
//! operator's estimate, actual rows *and wall time*. `serve` exposes
//! `GET /metrics` (Prometheus text) and `GET /stats` (JSON) from the
//! process metrics registry, and `--slow-ms N` logs one `slow-query:`
//! line to stderr for every query at or over N milliseconds.
//! `--timeout`, `--addr` and `--store` are strictly validated:
//! malformed values are hard usage errors, never silent fallbacks.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use sp2b_bench::experiments::{self, DEFAULT_SIZES};
use sp2b_bench::Args;
use sp2b_core::multiuser::{MultiuserConfig, StopCondition};
use sp2b_core::report;
use sp2b_core::runner::{run_benchmark, run_endpoint_workload, MixedWorkloadConfig, RunnerConfig};
use sp2b_core::{measure, BenchQuery, Endpoint, Engine, EngineKind, StoreLayout};
use sp2b_datagen::{generate_graph, generate_to_path, Config};
use sp2b_rdf::Graph;
use sp2b_server::ServerConfig;
use sp2b_sparql::results::{self, Format, WriteError};
use sp2b_sparql::{Error as SparqlError, Prepared, QueryEngine, ScanCounters};
use sp2b_store::{ShardBy, TripleStore};

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let Some(command) = args.positional.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command {
        "gen" => cmd_gen(&args),
        "save" => cmd_save(&args),
        "table3" => {
            println!("{}", experiments::table3(args.get_u64("max-exp", 7) as u32));
            Ok(())
        }
        "table8" => {
            println!("{}", experiments::table8(&sizes(&args)));
            Ok(())
        }
        "table5" => cmd_table5(&args),
        "bench" => cmd_bench(&args),
        "fig2a" => {
            println!("{}", experiments::fig2a(args.get_u64("triples", 250_000)));
            Ok(())
        }
        "fig2b" => {
            println!("{}", experiments::fig2b(args.get_u64("year", 1980) as i32));
            Ok(())
        }
        "fig2c" => cmd_fig2c(&args),
        "ablation" => cmd_ablation(&args),
        "scaling" => cmd_scaling(&args),
        "calibrate" => cmd_calibrate(&args),
        "smoke" => cmd_smoke(&args),
        "serve" => cmd_serve(&args),
        "multiuser" => cmd_multiuser(&args),
        "query" => cmd_query(&args),
        "ext" => cmd_ext(&args),
        "run" => cmd_run(&args),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sp2b: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: sp2b <gen|save|table3|table5|table8|bench|fig2a|fig2b|fig2c|ablation|scaling|calibrate|smoke|serve|multiuser|query|ext|run> [options]
run `sp2b bench` for the full paper protocol, `sp2b serve --addr 127.0.0.1:8088` for the SPARQL
endpoint, `sp2b multiuser --clients N [--arrival poisson:R/s] [--mix q1:80,q8:20] [--endpoint http://…]`
for the concurrent-client workload (closed or open loop),
`sp2b save --out DIR` to persist a document as checksummed segments reopened via --store disk:DIR;
see crate docs for options";

fn sizes(args: &Args) -> Vec<u64> {
    match args.get_list("sizes") {
        Some(list) => list
            .iter()
            .filter_map(|s| sp2b_bench::args::parse_scaled(s))
            .collect(),
        None => DEFAULT_SIZES.to_vec(),
    }
}

/// The `--timeout` flag in seconds: absent → `default_secs`; malformed
/// or zero → hard usage error (the `Args::get_positive` contract shared
/// with `--clients`/`--threads` — a benchmark must never silently run
/// under a timeout the operator did not ask for).
fn timeout(args: &Args, default_secs: u64) -> Result<Duration, String> {
    Ok(Duration::from_secs(
        args.get_positive("timeout", default_secs as usize)? as u64,
    ))
}

/// The `--threads` flag: `Ok(None)` keeps the engine default (all
/// cores); a malformed or zero value is a hard error with a usage
/// message, never a silent fallback (see `Args::get_positive_opt`).
fn threads(args: &Args) -> Result<Option<usize>, String> {
    args.get_positive_opt("threads")
}

/// The `--shards N [--shard-by subject|pso]` flags: `--shards 1` (the
/// default) keeps the classic monolithic store; `--shards N` loads into
/// a hash-partitioned sharded store (parallel per-shard index build,
/// shard-parallel scans, routed point lookups). Malformed values are
/// hard usage errors.
fn store_layout(args: &Args) -> Result<StoreLayout, String> {
    // Every command that builds a store in memory comes through here;
    // the block cache only exists behind `--store disk:DIR`, so a
    // `--cache-bytes` that would silently do nothing is a hard error.
    if args.has("cache-bytes") {
        return Err(
            "--cache-bytes only applies with --store disk:DIR (the block cache serves \
             saved segments; in-memory stores are fully resident)"
                .into(),
        );
    }
    let shards = args.get_positive("shards", 1)?;
    let shard_by = match args.get("shard-by") {
        None => ShardBy::Subject,
        Some(label) => ShardBy::from_label(label).ok_or_else(|| {
            format!("unknown --shard-by '{label}'\nusage: --shard-by subject|pso")
        })?,
    };
    Ok(StoreLayout { shards, shard_by })
}

/// Loads the document into the engine under the requested layout and
/// reports the load (plus per-shard facts when sharded) on stderr.
fn load_engine(kind: EngineKind, graph: &Graph, layout: &StoreLayout) -> Engine {
    let engine = Engine::load_with(kind, graph, layout);
    eprintln!(
        "loaded {} triples into {kind} ({})",
        graph.len(),
        engine.loading.summary()
    );
    if let Some(info) = engine.shards() {
        eprintln!("{}", info.summary());
    }
    if let Some(stats) = engine.stats_summary() {
        eprintln!("{stats}");
    }
    engine
}

/// The `--format` flag: `None` is the human table preview; `json`,
/// `csv` and `tsv` stream the full result through the same serializers
/// the HTTP endpoint uses.
fn output_format(args: &Args) -> Result<Option<Format>, String> {
    match args.get("format") {
        None | Some("table") => Ok(None),
        Some(s) => Format::from_media_type(s)
            .map(Some)
            .ok_or_else(|| format!("unknown --format '{s}'\nusage: --format table|json|csv|tsv")),
    }
}

/// The document for `run`/`serve`: parsed from `--data FILE` or
/// generated from `--triples N`.
fn document(args: &Args, default_triples: u64) -> Result<Graph, String> {
    match args.get("data") {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
            let reader = std::io::BufReader::with_capacity(1 << 16, file);
            let triples: Result<Vec<_>, _> = sp2b_rdf::ntriples::Parser::new(reader).collect();
            Ok(triples.map_err(|e| e.to_string())?.into_iter().collect())
        }
        None => Ok(generate_graph(Config::triples(args.get_u64("triples", default_triples))).0),
    }
}

fn engine_kind(args: &Args) -> Result<EngineKind, String> {
    match args.get("engine") {
        Some(l) => EngineKind::from_label(l).ok_or_else(|| format!("unknown engine '{l}'")),
        None => Ok(EngineKind::NativeOpt),
    }
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let n = args.get_u64("triples", 10_000);
    let seed = args.get_u64("seed", sp2b_datagen::Rng::DEFAULT_SEED);
    let out = args.get("out").unwrap_or("sp2bench.nt");
    let cfg = Config::triples(n).with_seed(seed);
    let stats = generate_to_path(cfg, std::path::Path::new(out)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} triples ({} bytes) up to year {} to {out}",
        stats.triples,
        stats.bytes.unwrap_or(0),
        stats.end_year
    );
    Ok(())
}

/// `sp2b save --out DIR`: writes the document (generated from
/// `--triples`/`--seed` or parsed from `--data FILE`) as a directory of
/// immutable checksummed segments — shared dictionary plus per-shard
/// sorted SPO/PSO/OSP runs — that `--store disk:DIR` reopens in
/// O(header + dictionary) with no reparse and no index rebuild.
/// `--shards N [--shard-by subject|pso]` fix the persisted
/// partitioning. `--out` is strictly validated: a path whose parent
/// does not exist, or that names a non-directory, is a one-line error.
fn cmd_save(args: &Args) -> Result<(), String> {
    let out = args
        .get("out")
        .filter(|s| !s.is_empty())
        .ok_or("provide --out DIR  (the segment directory to write)")?;
    let dir = std::path::Path::new(out);
    if dir.exists() && !dir.is_dir() {
        return Err(format!("--out '{out}' exists and is not a directory"));
    }
    if !dir.exists() {
        // Create one level, like `sp2b gen` writing a file: the parent
        // must already exist (a typo'd deep path should not silently
        // mkdir -p its way into being).
        match dir.parent() {
            Some(p) if p.as_os_str().is_empty() || p.is_dir() => {
                std::fs::create_dir(dir).map_err(|e| format!("cannot create --out '{out}': {e}"))?
            }
            _ => {
                return Err(format!(
                    "cannot create --out '{out}': its parent directory does not exist"
                ))
            }
        }
    }
    let layout = store_layout(args)?;
    let (saved, m) = match args.get("data") {
        Some(path) => measure(|| {
            sp2b_store::save_segments_from_path(
                std::path::Path::new(path),
                dir,
                layout.shards,
                layout.shard_by,
            )
            .map_err(|e| e.to_string())
        }),
        None => {
            let n = args.get_u64("triples", 50_000);
            let seed = args.get_u64("seed", sp2b_datagen::Rng::DEFAULT_SEED);
            let (graph, _) = generate_graph(Config::triples(n).with_seed(seed));
            measure(|| {
                sp2b_store::save_graph(dir, &graph, layout.shards, layout.shard_by)
                    .map_err(|e| e.to_string())
            })
        }
    };
    let stats = saved?;
    eprintln!(
        "saved {} triples ({} terms, {} shard(s) by {}, {} bytes) to {out} in {}",
        stats.triples,
        stats.terms,
        stats.shard_lens.len(),
        layout.shard_by,
        stats.bytes,
        m.summary()
    );
    Ok(())
}

/// Opens a saved segment directory (`--store disk:DIR`) as the engine.
/// The segments fix the document and its sharding, so flags that would
/// silently not apply — and non-native engines, which the sorted runs
/// cannot back — are hard errors, not quiet no-ops.
fn open_disk_engine(args: &Args, dir: &std::path::Path) -> Result<Engine, String> {
    open_disk_engine_rejecting(
        args,
        dir,
        &["data", "triples", "seed", "shards", "shard-by"],
    )
}

/// [`open_disk_engine`] with the rejected-flag list explicit: `sp2b
/// multiuser` drops `"seed"` from it because there `--seed` is the
/// workload sampler/arrival seed, not the generator seed the segments
/// already fixed.
fn open_disk_engine_rejecting(
    args: &Args,
    dir: &std::path::Path,
    fixed_flags: &[&str],
) -> Result<Engine, String> {
    for &flag in fixed_flags {
        if args.has(flag) {
            return Err(format!(
                "--{flag} does not apply with --store disk: the saved segments fix the \
                 document and sharding; re-run `sp2b save` to change them"
            ));
        }
    }
    let kind = engine_kind(args)?;
    if !kind.is_native() {
        return Err(format!(
            "engine '{}' does not apply with --store disk: segments open as native \
             sorted indexes; use native-base or native-opt",
            kind.label()
        ));
    }
    let cache_bytes = args.get_bytes_opt("cache-bytes")?;
    let engine = Engine::open_disk_with(kind, dir, cache_bytes)
        .map_err(|e| format!("opening {out}: {e}", out = dir.display()))?;
    eprintln!(
        "opened {} triples from {} into {kind} ({})",
        engine.store().len(),
        dir.display(),
        engine.loading.summary()
    );
    if let Some(info) = engine.shards() {
        eprintln!("{}", info.summary());
    }
    if let Some(stats) = engine.stats_summary() {
        eprintln!("{stats}");
    }
    Ok(engine)
}

fn cmd_table5(args: &Args) -> Result<(), String> {
    println!("{}", experiments::table5(&sizes(args), timeout(args, 60)?));
    Ok(())
}

fn cmd_ablation(args: &Args) -> Result<(), String> {
    println!(
        "{}",
        experiments::ablation(args.get_u64("triples", 50_000), timeout(args, 30)?)
    );
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let mut cfg = RunnerConfig::paper_defaults();
    cfg.scales = sizes(args);
    cfg.timeout = timeout(args, 30)?;
    cfg.runs = args.get_u64("runs", 3) as usize;
    if let Some(labels) = args.get_list("engines") {
        cfg.engines = experiments::parse_engines(&labels)?;
    }
    if let Some(labels) = args.get_list("queries") {
        cfg.queries = experiments::parse_queries(&labels)?;
    }
    let quiet = args.has("quiet");
    let report = run_benchmark(&cfg, |line| {
        if !quiet {
            eprintln!("{line}");
        }
    });
    println!("{}", report::full_report(&report));
    Ok(())
}

fn cmd_fig2c(args: &Args) -> Result<(), String> {
    let year = args.get_u64("year", 1985) as i32;
    let years: Vec<i32> = match args.get_list("years") {
        Some(list) => list.iter().filter_map(|s| s.parse().ok()).collect(),
        None => vec![1955, 1965, 1975, 1985],
    };
    println!("{}", experiments::fig2c(year, &years));
    Ok(())
}

/// Streams a prepared query through `engine`, printing up to `limit`
/// rows (indented by `indent`) while the remainder is only counted —
/// the shared table-preview writer in `sp2b_sparql::results`. Returns
/// `(total, shown)`.
fn stream_rows(
    engine: &QueryEngine,
    prepared: &Prepared,
    limit: usize,
    indent: &str,
) -> Result<(u64, usize), WriteError> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut solutions = engine.solutions(prepared);
    results::write_table_preview(&mut out, &mut solutions, limit, indent)
}

/// Streams the full result set to stdout in a wire format — the exact
/// serializers the HTTP endpoint uses. Prints the row count to stderr.
fn serialize_to_stdout(
    engine: &QueryEngine,
    prepared: &Prepared,
    format: Format,
) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut solutions = engine.solutions(prepared);
    let rows = results::write_solutions(&mut out, format, &mut solutions, prepared.is_ask())
        .map_err(describe)?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!("{rows} row(s) as {}", format.label());
    Ok(())
}

/// Thread-scaling experiment: speedup per query as `--threads` grows.
fn cmd_scaling(args: &Args) -> Result<(), String> {
    let n = args.get_u64("triples", 50_000);
    let thread_counts: Vec<usize> = match args.get_list("threads") {
        Some(list) => list
            .iter()
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("invalid --threads value '{s}' (expected a number)"))
            })
            .collect::<Result<_, String>>()?,
        None => vec![1, 2, 4, 8],
    };
    if thread_counts.is_empty() {
        return Err("provide at least one thread count, e.g. --threads 1,2,4".into());
    }
    let queries = match args.get_list("queries") {
        Some(labels) => experiments::parse_queries(&labels)?,
        None => BenchQuery::ALL.to_vec(),
    };
    println!(
        "{}",
        experiments::thread_scaling(n, &thread_counts, timeout(args, 60)?, &queries)
    );
    Ok(())
}

/// Measured threshold calibration: times per-morsel fan-out overhead on
/// generated data and prints a suggested `plan::parallel_threshold`
/// base, verified by re-running with the suggestion fed through
/// `QueryOptions::parallel_base`.
fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let triples = args.get_u64("triples", 20_000);
    let degree = args.get_positive("threads", 2)?;
    let runs = args.get_positive("runs", 3)?;
    println!("{}", experiments::calibrate(triples, degree, runs)?);
    Ok(())
}

/// Tiny end-to-end smoke: generate → load → execute (count) every
/// benchmark and extension query at the requested thread count. Exits
/// nonzero on any parse error, evaluation error or timeout — the CI job
/// runs this at `--threads 1` and `--threads 4` so both the sequential
/// and the morsel-parallel paths are exercised on every push.
fn cmd_smoke(args: &Args) -> Result<(), String> {
    let t = threads(args)?;
    let engine = match args.get_store_dir()? {
        Some(dir) => open_disk_engine(args, &dir)?,
        None => {
            let n = args.get_u64("triples", 5_000);
            let layout = store_layout(args)?;
            let (graph, _) = generate_graph(Config::triples(n));
            load_engine(EngineKind::NativeOpt, &graph, &layout)
        }
    };
    let qe = engine.query_engine_with(Some(timeout(args, 120)?), t);
    let mut texts: Vec<(&'static str, &'static str)> = BenchQuery::ALL
        .iter()
        .map(|q| (q.label(), q.text()))
        .collect();
    texts.extend(
        sp2b_core::ExtQuery::ALL
            .iter()
            .map(|q| (q.label(), q.text())),
    );
    println!(
        "smoke: {} triples, threads = {}, shards = {}",
        engine.store().len(),
        t.map_or("default".to_owned(), |t| t.to_string()),
        engine.shards().map_or(1, |i| i.count())
    );
    for (label, text) in texts {
        let prepared = qe.prepare(text).map_err(|e| format!("{label}: {e}"))?;
        let (counted, m) = measure(|| qe.count(&prepared));
        let count = counted.map_err(|e| format!("{label}: {e}"))?;
        println!("  {label:<5} {count:>10} solutions ({})", m.summary());
    }
    // After the workload, not at open: a cold cache reports nothing but
    // zeros. The CI out-of-core job greps this line for evictions.
    if let Some(line) = engine.cache_summary() {
        println!("  {line}");
    }
    Ok(())
}

/// The SPARQL Protocol endpoint: loads (or generates) one document and
/// serves it over HTTP from a fixed worker pool sharing the store.
/// `--threads` sizes the HTTP worker pool, `--parallelism` pins the
/// per-query morsel parallelism (default 1 — concurrency comes from the
/// clients), `--timeout` bounds every request, and `--duration` runs
/// the server that long before shutting down gracefully (omit it to
/// serve until the process is killed). `--addr`/`--timeout` are
/// strictly validated; malformed values are hard usage errors.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get_addr("addr", "127.0.0.1:8088")?;
    let workers = args.get_positive("threads", 4)?;
    let per_query_timeout = timeout(args, 30)?;
    let parallelism = args.get_positive_opt("parallelism")?.unwrap_or(1);
    let duration = args.get_positive_opt("duration")?;
    let max_queue = args.get_positive("queue", 1024)?;
    let slow_ms = args.get_positive_opt("slow-ms")?;
    let engine = match args.get_store_dir()? {
        Some(dir) => open_disk_engine(args, &dir)?,
        None => {
            let kind = engine_kind(args)?;
            let layout = store_layout(args)?;
            let graph = document(args, 50_000)?;
            load_engine(kind, &graph, &layout)
        }
    };
    let qe = engine.query_engine_with(None, Some(parallelism));
    let cfg = ServerConfig {
        addr,
        workers,
        timeout: Some(per_query_timeout),
        max_queue,
        slow_log: slow_ms.map(|ms| sp2b_server::SlowLog::stderr(Duration::from_millis(ms as u64))),
    };
    let handle = sp2b_server::spawn(qe, &cfg).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "serving SPARQL on {} ({} worker(s), per-query parallelism {}, timeout {}s)",
        handle.endpoint_url(),
        workers,
        parallelism,
        per_query_timeout.as_secs()
    );
    eprintln!("telemetry: GET /metrics (Prometheus text), GET /stats (JSON)");
    if let Some(ms) = slow_ms {
        eprintln!("slow-query log: queries at or over {ms} ms go to stderr");
    }
    match duration {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs as u64)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let stats = handle.shutdown();
    eprintln!("server shut down cleanly: {stats}");
    Ok(())
}

/// Applies the shared workload-model flags (`--arrival`, `--mix` /
/// `--zipf`, `--warmup`, `--seed`) onto a [`MultiuserConfig`]. The
/// `--queries` rotation (if any) was applied by the caller; the
/// weighted mix replaces it outright and `workload_flags` already
/// rejected the contradictory combination.
fn apply_workload_flags(cfg: &mut MultiuserConfig, wl: &experiments::WorkloadFlags) {
    cfg.arrival = wl.arrival;
    cfg.warmup = wl.warmup;
    if let Some(seed) = wl.seed {
        cfg.seed = seed;
    }
    if let Some((items, weights)) = &wl.mix {
        cfg.mix = items.clone();
        cfg.weights = weights.clone();
    }
}

/// Writes the open-loop report to the `--report json:FILE` sink.
/// `workload_flags` guarantees the sink only exists alongside an open
/// arrival, and every open-arrival run produces an [`OpenLoopReport`] —
/// a missing one here is a driver bug, not an operator error.
fn write_workload_json(
    wl: &experiments::WorkloadFlags,
    open: Option<&sp2b_core::OpenLoopReport>,
    progress: &mut impl FnMut(&str),
) -> Result<(), String> {
    let Some(path) = &wl.report_path else {
        return Ok(());
    };
    let open = open.expect("--report requires an open arrival, which yields an open report");
    std::fs::write(path, report::open_loop_json(open))
        .map_err(|e| format!("cannot write --report {}: {e}", path.display()))?;
    progress(&format!("wrote workload report to {}", path.display()));
    Ok(())
}

/// The multi-user mixed workload (paper Section VII's "multi-user
/// scenario"): N client threads issue a mix of Q1–Q12/A1–A5, reporting
/// per-client p50/p95/p99 latency and aggregate queries/sec. The
/// default `--arrival closed` is the classic closed loop (each client
/// issues the next query when the previous answer returns, rotation
/// offset per client); `--arrival constant:R/s|poisson:R/s|burst:…`
/// switches to the open-loop workload model — a schedule thread stamps
/// intended send times, latency is measured from those stamps
/// (coordinated-omission-safe), and the report splits queue-delay from
/// service time. `--mix q1:80,q8:20` / `--zipf S` weight the template
/// mix, `--warmup SECS` excludes the cold start and `--seed N` replays
/// the exact sample/arrival sequence. Without `--endpoint` the clients
/// share one in-process store; with `--endpoint http://…` they drive a
/// live `sp2b serve` instance over real sockets through the same
/// histogram/report pipeline. All flags are strictly validated:
/// malformed or contradictory values are hard errors.
fn cmd_multiuser(args: &Args) -> Result<(), String> {
    let clients = args.get_positive("clients", 4)?;
    let stop = match args.get_positive_opt("rounds")? {
        Some(rounds) => StopCondition::Rounds(rounds as u32),
        None => StopCondition::Duration(Duration::from_secs(
            args.get_positive("duration", 30)? as u64
        )),
    };
    let quiet = args.has("quiet");
    let wl = experiments::workload_flags(args)?;
    let mut progress = |line: &str| {
        if !quiet {
            eprintln!("{line}");
        }
    };

    if let Some(url) = args.get("endpoint") {
        // Endpoint mode: the server owns the store, its parallelism and
        // its engine — flags that silently would not apply are errors.
        for flag in [
            "triples",
            "engine",
            "threads",
            "shards",
            "shard-by",
            "store",
            "cache-bytes",
        ] {
            if args.has(flag) {
                return Err(format!(
                    "--{flag} does not apply with --endpoint (the server owns the store); \
                     configure it on `sp2b serve` instead"
                ));
            }
        }
        let endpoint = Endpoint::parse(url)?;
        let mut cfg = MultiuserConfig::new(clients, stop);
        cfg.timeout = timeout(args, 30)?;
        if let Some(labels) = args.get_list("queries") {
            cfg.mix = experiments::parse_mix(&labels)?;
        }
        apply_workload_flags(&mut cfg, &wl);
        if cfg.arrival.is_open() {
            let open = sp2b_core::run_endpoint_workload_open(&endpoint, &cfg, &mut progress);
            println!(
                "{}",
                report::endpoint_open_workload_report(&endpoint.url(), &open)
            );
            return write_workload_json(&wl, Some(&open), &mut progress);
        }
        let report = run_endpoint_workload(&endpoint, &cfg, &mut progress);
        println!(
            "{}",
            report::endpoint_workload_report(&endpoint.url(), &report)
        );
        return Ok(());
    }

    let parallelism = args.get_positive("threads", 1)?;

    if let Some(dir) = args.get_store_dir()? {
        // Disk mode: the saved segments fix the document and sharding;
        // the driver runs the same mixed workload against the reopened
        // engine without ever touching an N-Triples source.
        let engine =
            open_disk_engine_rejecting(args, &dir, &["data", "triples", "shards", "shard-by"])?;
        let mut mcfg = MultiuserConfig::new(clients, stop);
        mcfg.parallelism = parallelism;
        mcfg.timeout = timeout(args, 30)?;
        mcfg.checksums = args.has("checksums");
        if let Some(labels) = args.get_list("queries") {
            mcfg.mix = experiments::parse_mix(&labels)?;
        }
        apply_workload_flags(&mut mcfg, &wl);
        let report = sp2b_core::run_mixed_workload_on(&engine, &mcfg, &mut progress);
        println!("{}", report::mixed_workload_report(&report));
        return write_workload_json(&wl, report.open.as_ref(), &mut progress);
    }

    let triples = args.get_u64("triples", 50_000);
    let mut cfg = MixedWorkloadConfig::new(triples, clients, stop);
    cfg.engine = engine_kind(args)?;
    cfg.layout = store_layout(args)?;
    cfg.multiuser.parallelism = parallelism;
    cfg.multiuser.timeout = timeout(args, 30)?;
    cfg.multiuser.checksums = args.has("checksums");
    if let Some(labels) = args.get_list("queries") {
        cfg.multiuser.mix = experiments::parse_mix(&labels)?;
    }
    apply_workload_flags(&mut cfg.multiuser, &wl);
    let report = sp2b_core::run_mixed_workload(&cfg, &mut progress);
    println!("{}", report::mixed_workload_report(&report));
    write_workload_json(&wl, report.open.as_ref(), &mut progress)
}

/// Runs the A1–A5 aggregate extension queries (Section VII's
/// "aggregation support" future work) and prints their result heads.
fn cmd_ext(args: &Args) -> Result<(), String> {
    let n = args.get_u64("triples", 50_000);
    let limit = args.get_u64("limit", 10) as usize;
    let (graph, _) = generate_graph(Config::triples(n));
    let engine = Engine::load(EngineKind::NativeOpt, &graph);
    let qe = engine.query_engine_with(Some(timeout(args, 300)?), threads(args)?);
    for q in sp2b_core::ExtQuery::ALL {
        let prepared = qe.prepare(q.text()).map_err(|e| format!("{q}: {e}"))?;
        println!("\n{q}:");
        let (streamed, m) = measure(|| stream_rows(&qe, &prepared, limit, "  "));
        match streamed {
            Ok((total, shown)) => {
                println!("  {total} groups ({})", m.summary());
                if total > shown as u64 {
                    println!("  … ({} more groups)", total - shown as u64);
                }
            }
            Err(WriteError::Query(SparqlError::Cancelled)) => println!("{q}: timeout"),
            Err(e) => return Err(format!("{q}: {e}")),
        }
    }
    Ok(())
}

/// Runs arbitrary SPARQL (from `--query-file` or inline after `run`)
/// against an N-Triples document (`--data FILE`) or freshly generated
/// data (`--triples N`).
fn cmd_run(args: &Args) -> Result<(), String> {
    let text = match (args.get("query-file"), args.positional.get(1)) {
        (Some(path), _) => std::fs::read_to_string(path).map_err(|e| e.to_string())?,
        (None, Some(inline)) => inline.clone(),
        (None, None) => {
            return Err("provide a query: `sp2b run 'SELECT …'` or --query-file q.rq".into())
        }
    };
    let engine = match args.get_store_dir()? {
        Some(dir) => open_disk_engine(args, &dir)?,
        None => {
            let kind = engine_kind(args)?;
            let layout = store_layout(args)?;
            let graph = document(args, 50_000)?;
            load_engine(kind, &graph, &layout)
        }
    };
    let limit = args.get_u64("limit", 50) as usize;
    let explain = args.has("explain");
    let trace = args.has("trace");
    let counters = std::sync::Arc::new(ScanCounters::default());
    let mut qe = engine.query_engine_with(Some(timeout(args, 300)?), threads(args)?);
    if explain || trace {
        qe = qe.scan_counters(counters.clone());
    }
    let prep_started = std::time::Instant::now();
    let prepared = qe.prepare(&text).map_err(|e| e.to_string())?;
    let prepare_time = prep_started.elapsed();
    if let Some(format) = output_format(args)? {
        return serialize_to_stdout(&qe, &prepared, format);
    }
    if prepared.is_ask() {
        let (result, m) = measure(|| qe.execute(&prepared));
        let r = result.map_err(|e| format!("{e} ({})", m.summary()))?;
        println!(
            "{}",
            if r.as_bool() == Some(true) {
                "yes"
            } else {
                "no"
            }
        );
        if explain {
            println!("{}", explain_report(&prepared, qe.store(), &counters));
        }
        if trace {
            println!(
                "{}",
                trace_report(&prepared, &qe, &counters, prepare_time, m.tme)
            );
        }
        return Ok(());
    }
    // Stream: the first `limit` rows decode and print; the rest are only
    // counted (no materialization, memory stays flat).
    let (streamed, m) = measure(|| stream_rows(&qe, &prepared, limit, ""));
    let (total, shown) = streamed.map_err(|e| format!("{} ({})", describe(e), m.summary()))?;
    eprintln!("{total} solutions in {}", m.summary());
    if total > shown as u64 {
        eprintln!("… ({} more rows; raise --limit)", total - shown as u64);
    }
    if explain {
        println!("{}", explain_report(&prepared, qe.store(), &counters));
    }
    if trace {
        println!(
            "{}",
            trace_report(&prepared, &qe, &counters, prepare_time, m.tme)
        );
    }
    Ok(())
}

/// `--explain`: renders the prepared plan's BGP join order with, per
/// pattern, the store's estimated cardinality next to the rows the step
/// actually emitted during execution (read back from the attached
/// [`ScanCounters`]). The first line states which statistics the planner
/// ordered with.
fn explain_report(prepared: &Prepared, store: &dyn TripleStore, counters: &ScanCounters) -> String {
    use sp2b_sparql::plan::{Plan, PlanPattern, PlanSlot};
    fn collect<'p>(plan: &'p Plan, out: &mut Vec<&'p PlanPattern>) {
        match plan {
            Plan::Bgp { patterns, .. } => out.extend(patterns.iter()),
            Plan::Join { left, right, .. } | Plan::LeftJoin { left, right, .. } => {
                collect(left, out);
                collect(right, out);
            }
            Plan::Union(a, b) => {
                collect(a, out);
                collect(b, out);
            }
            Plan::Filter(_, inner)
            | Plan::Distinct(inner)
            | Plan::Project(_, inner)
            | Plan::OrderBy(_, inner) => collect(inner, out),
            Plan::Slice { input, .. }
            | Plan::GroupAggregate { input, .. }
            | Plan::Exchange { input, .. } => collect(input, out),
        }
    }
    let dict = store.dictionary();
    let slot = |s: &PlanSlot| match s {
        PlanSlot::Var(v) => format!("?{v}"),
        PlanSlot::Const(Some(id)) => dict.decode(*id).to_string(),
        PlanSlot::Const(None) => "<absent-from-data>".to_owned(),
    };
    let mut patterns = Vec::new();
    collect(prepared.plan(), &mut patterns);
    let mut out = String::from("join order (estimated cardinality vs actual rows emitted):\n");
    match store.stats() {
        Some(stats) => out.push_str(&format!(
            "  statistics: {} predicates, {} characteristic sets over {} triples\n",
            stats.predicates.len(),
            stats.characteristic_sets.len(),
            stats.triples
        )),
        None => out.push_str("  statistics: none (fixed-discount heuristic order)\n"),
    }
    let mut est_total: u64 = 0;
    let mut actual_total: u64 = 0;
    for (i, p) in patterns.iter().enumerate() {
        let mut store_pattern: sp2b_store::Pattern = [None, None, None];
        for (pos, s) in p.slots.iter().enumerate() {
            if let PlanSlot::Const(Some(id)) = s {
                store_pattern[pos] = Some(*id);
            }
        }
        let est = if p.is_unsatisfiable() {
            0
        } else {
            store.estimate(store_pattern)
        };
        let actual = counters.rows_for(&p.slots);
        est_total = est_total.saturating_add(est);
        actual_total = actual_total.saturating_add(actual);
        out.push_str(&format!(
            "  {:>2}. {} {} {}  est {est}, rows {actual}\n",
            i + 1,
            slot(&p.slots[0]),
            slot(&p.slots[1]),
            slot(&p.slots[2]),
        ));
    }
    out.push_str(&format!(
        "  total: estimated {est_total}, emitted {actual_total} rows"
    ));
    if let Some(cache) = store.cache_stats() {
        out.push_str(&format!("\n  cache: {}", cache.summary()));
    }
    out
}

/// `--trace`: the fuller per-query breakdown — phase timings
/// (prepare/execute) plus, per operator, the planner's estimate against
/// the rows it actually emitted *and the wall time it consumed*, read
/// back from the same [`ScanCounters`] `--explain` uses.
fn trace_report(
    prepared: &Prepared,
    qe: &QueryEngine,
    counters: &ScanCounters,
    prepare: Duration,
    execute: Duration,
) -> String {
    let mut trace = sp2b_obs::QueryTrace::new();
    trace.phase("prepare", prepare);
    trace.phase("execute", execute);
    trace.operators = sp2b_sparql::operator_spans(prepared, qe.store(), counters);
    let mut out = trace.render();
    if let Some(cache) = qe.cache_stats() {
        out.push_str(&format!("cache: {}\n", cache.summary()));
    }
    out.truncate(out.trim_end().len());
    out
}

/// Human phrasing for streaming errors on the CLI.
fn describe(e: WriteError) -> String {
    match e {
        WriteError::Query(SparqlError::Cancelled) => "query timed out".to_owned(),
        other => other.to_string(),
    }
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let label = args
        .positional
        .get(1)
        .ok_or("query label required, e.g. `sp2b query Q4`")?;
    let query = BenchQuery::from_label(label).ok_or_else(|| format!("unknown query '{label}'"))?;
    let limit = args.get_u64("limit", 20);

    let engine = match args.get_store_dir()? {
        Some(dir) => open_disk_engine(args, &dir)?,
        None => {
            let n = args.get_u64("triples", 50_000);
            let kind = engine_kind(args)?;
            let layout = store_layout(args)?;
            let (graph, _) = generate_graph(Config::triples(n));
            load_engine(kind, &graph, &layout)
        }
    };
    let n = engine.store().len();
    let engine_label = engine.kind();
    let explain = args.has("explain");
    let trace = args.has("trace");
    let counters = std::sync::Arc::new(ScanCounters::default());
    let mut qe = engine.query_engine_with(Some(timeout(args, 300)?), threads(args)?);
    if explain || trace {
        qe = qe.scan_counters(counters.clone());
    }
    let prep_started = std::time::Instant::now();
    let prepared = qe.prepare(query.text()).map_err(|e| e.to_string())?;
    let prepare_time = prep_started.elapsed();
    if let Some(format) = output_format(args)? {
        return serialize_to_stdout(&qe, &prepared, format);
    }
    if prepared.is_ask() {
        let (result, m) = measure(|| qe.execute(&prepared));
        let r = result.map_err(|e| format!("{query}: {e} ({})", m.summary()))?;
        println!(
            "{query} on {n} triples via {engine_label}: answer {} ({})",
            if r.as_bool() == Some(true) {
                "yes"
            } else {
                "no"
            },
            m.summary()
        );
        if explain {
            println!("{}", explain_report(&prepared, qe.store(), &counters));
        }
        if trace {
            println!(
                "{}",
                trace_report(&prepared, &qe, &counters, prepare_time, m.tme)
            );
        }
        return Ok(());
    }
    let (streamed, m) = measure(|| stream_rows(&qe, &prepared, limit as usize, ""));
    let (total, shown) =
        streamed.map_err(|e| format!("{query}: {} ({})", describe(e), m.summary()))?;
    println!(
        "{query} on {n} triples via {engine_label}: {total} solutions ({})",
        m.summary()
    );
    if total > shown as u64 {
        println!("… ({} more rows)", total - shown as u64);
    }
    if explain {
        println!("{}", explain_report(&prepared, qe.store(), &counters));
    }
    if trace {
        println!(
            "{}",
            trace_report(&prepared, &qe, &counters, prepare_time, m.tme)
        );
    }
    Ok(())
}
