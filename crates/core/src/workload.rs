//! The open-loop workload model: weighted template mixes, arrival
//! processes, and the coordinated-omission-safe driver.
//!
//! The closed-loop driver in [`crate::multiuser`] issues the next query
//! the moment the previous one returns, so when the store stalls the
//! driver stalls with it: load drops exactly when the system is
//! struggling, and the stall never reaches the percentiles. That defect
//! has a name — *coordinated omission* — and the query-log studies the
//! multi-user scenario is modeled on (skewed template popularity, bursty
//! arrivals) are precisely the traffic shapes it hides.
//!
//! This module keeps the schedule independent of the system under test:
//!
//! - [`WeightedMix`] — template popularity, from the
//!   `--mix q1:80,q5a:15,q8:5` DSL ([`WeightedMix::parse`]) or a
//!   Zipfian ranking of the full benchmark mix ([`WeightedMix::zipf`]),
//!   sampled by a seeded [`MixSampler`] (SplitMix64, deterministic
//!   replay);
//! - [`Arrival`] — when requests are *supposed* to go out: constant
//!   spacing, Poisson (exponential gaps), or an on/off burst train,
//!   realized as intended-send offsets by [`ArrivalSchedule`];
//! - [`run_open_loop_with`] — a schedule thread stamps each request with
//!   its intended send time and pushes into a bounded queue; worker
//!   clients pull and execute. Latency is recorded **from the intended
//!   send time** into an [`sp2b_obs::WorkloadRecorder`], with queue
//!   delay and service time kept as separate histograms — so if workers
//!   can't keep up, the numbers say so instead of quietly thinning the
//!   load.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use sp2b_obs::{LatencyHistogram, WindowSnapshot, WorkloadRecorder};
use sp2b_store::SharedStore;

use crate::ext_queries::ExtQuery;
use crate::multiuser::{
    default_mix, stability, ExecOutcome, InProcessTransport, MultiuserConfig, SessionSetup,
    StopCondition, WorkItem, WorkTransport,
};
use crate::queries::BenchQuery;

/// Registry metric name for the driver's per-template latency series
/// (label `template`): the client-side mirror of the server's
/// `sp2b_request_seconds`.
pub const MULTIUSER_LATENCY_METRIC: &str = "sp2b_multiuser_latency_seconds";
const MULTIUSER_LATENCY_HELP: &str =
    "Client-observed multiuser query latency in seconds, per template \
     (closed loop: from actual send; open loop: from intended send).";

/// Width of the throughput/p99 time-series windows in workload reports.
pub const WINDOW_WIDTH: Duration = Duration::from_secs(1);

/// Registers (or retrieves) the global per-template latency series for
/// `label` — shared by the closed- and open-loop drivers.
pub fn template_latency_series(label: &str) -> sp2b_obs::Histogram {
    sp2b_obs::global().histogram_labeled(
        MULTIUSER_LATENCY_METRIC,
        MULTIUSER_LATENCY_HELP,
        "template",
        label,
    )
}

// ---------------------------------------------------------------------------
// Deterministic sampling
// ---------------------------------------------------------------------------

/// SplitMix64 — the standard 64-bit mixing generator. Tiny state, solid
/// output, and fully deterministic from the seed, which is all the
/// workload model needs: same `--seed` ⇒ same template sequence and the
/// same Poisson gaps, so a run can be replayed exactly.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// The mix DSL
// ---------------------------------------------------------------------------

/// A query mix with per-template popularity weights (`items[i]` is drawn
/// with probability `weights[i] / Σ weights`).
#[derive(Debug, Clone)]
pub struct WeightedMix {
    /// The templates, in DSL (or benchmark) order.
    pub items: Vec<WorkItem>,
    /// Parallel positive weights.
    pub weights: Vec<f64>,
}

/// Resolves a mix-DSL template label: a benchmark query (Q1…Q12c) or an
/// aggregation extension query (A1…A5), case-insensitive.
fn resolve_template(label: &str) -> Option<WorkItem> {
    if let Some(q) = BenchQuery::from_label(label) {
        return Some(WorkItem::bench(q));
    }
    ExtQuery::ALL
        .iter()
        .find(|q| q.label().eq_ignore_ascii_case(label))
        .map(|&q| WorkItem::ext(q))
}

impl WeightedMix {
    /// Parses the mix DSL: comma-separated `LABEL:WEIGHT` entries, e.g.
    /// `q1:80,q5a:15,q8:5`. Weights are positive integers (relative
    /// popularity, not percentages). Zero weights, unknown templates,
    /// duplicates and malformed entries are hard errors.
    pub fn parse(spec: &str) -> Result<WeightedMix, String> {
        let mut items = Vec::new();
        let mut weights = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            let Some((label, weight)) = entry.split_once(':') else {
                return Err(format!("mix entry '{entry}' must be LABEL:WEIGHT"));
            };
            let (label, weight) = (label.trim(), weight.trim());
            let item = resolve_template(label)
                .ok_or_else(|| format!("unknown query template '{label}'"))?;
            if items
                .iter()
                .any(|existing: &WorkItem| existing.label == item.label)
            {
                return Err(format!("duplicate template '{label}' in mix"));
            }
            let w: u64 = weight
                .parse()
                .map_err(|_| format!("weight '{weight}' for '{label}' is not an integer"))?;
            if w == 0 {
                return Err(format!("weight for '{label}' must be positive"));
            }
            items.push(item);
            weights.push(w as f64);
        }
        if items.is_empty() {
            return Err("the mix must name at least one template".to_string());
        }
        Ok(WeightedMix { items, weights })
    }

    /// The full benchmark mix (Q1…Q12c then A1…A5) with Zipfian
    /// popularity: the template at rank *r* (1-based, benchmark order)
    /// gets weight *r*⁻ˢ. `s` must be a positive finite exponent;
    /// larger `s` skews harder toward the head.
    pub fn zipf(s: f64) -> Result<WeightedMix, String> {
        if !s.is_finite() || s <= 0.0 {
            return Err(format!(
                "zipf exponent must be positive and finite, got '{s}'"
            ));
        }
        let items = default_mix();
        let weights = (1..=items.len()).map(|r| (r as f64).powf(-s)).collect();
        Ok(WeightedMix { items, weights })
    }
}

/// Draws template slots from a [`WeightedMix`]'s weights — seeded, so a
/// replay with the same seed draws the same sequence.
#[derive(Debug, Clone)]
pub struct MixSampler {
    cumulative: Vec<f64>,
    rng: SplitMix64,
}

impl MixSampler {
    /// A sampler over `weights` (must be non-empty, all positive).
    pub fn new(weights: &[f64], seed: u64) -> Self {
        assert!(!weights.is_empty(), "sampler needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w > 0.0 && w.is_finite(), "weights must be positive");
            total += w;
            cumulative.push(total);
        }
        MixSampler {
            cumulative,
            rng: SplitMix64::new(seed),
        }
    }

    /// The next slot index (into the weight vector).
    pub fn sample(&mut self) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = self.rng.next_f64() * total;
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

/// When requests are *supposed* to be sent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// The legacy closed loop: each client issues the next query when
    /// the previous returns. No schedule, no queueing visibility.
    Closed,
    /// Open loop, evenly spaced at `rate` requests/second.
    Constant {
        /// Requests per second.
        rate: f64,
    },
    /// Open loop, exponentially distributed inter-arrivals with mean
    /// `1/rate` — the memoryless traffic most queueing results assume.
    Poisson {
        /// Mean requests per second.
        rate: f64,
    },
    /// Open loop, an on/off train: within each `period`, requests arrive
    /// at `rate` during the first `duty` fraction and then stop.
    Burst {
        /// In-burst requests per second.
        rate: f64,
        /// Cycle length.
        period: Duration,
        /// Fraction of the period that is on, in `(0, 1]`.
        duty: f64,
    },
}

/// Parses a rate like `5000/s`, `5000`, or `12.5/s`.
fn parse_rate(s: &str) -> Result<f64, String> {
    let digits = s.strip_suffix("/s").unwrap_or(s).trim();
    let rate: f64 = digits
        .parse()
        .map_err(|_| format!("rate '{s}' is not a number"))?;
    if !rate.is_finite() || rate <= 0.0 {
        return Err(format!("arrival rate must be positive, got '{s}'"));
    }
    Ok(rate)
}

impl Arrival {
    /// Parses an `--arrival` spec: `closed`, `constant:RATE[/s]`,
    /// `poisson:RATE[/s]`, or `burst:RATE[/s],PERIOD[s],DUTY`.
    pub fn parse(spec: &str) -> Result<Arrival, String> {
        let spec = spec.trim();
        if spec == "closed" {
            return Ok(Arrival::Closed);
        }
        if let Some(rate) = spec.strip_prefix("constant:") {
            return Ok(Arrival::Constant {
                rate: parse_rate(rate)?,
            });
        }
        if let Some(rate) = spec.strip_prefix("poisson:") {
            return Ok(Arrival::Poisson {
                rate: parse_rate(rate)?,
            });
        }
        if let Some(rest) = spec.strip_prefix("burst:") {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 3 {
                return Err(format!("burst spec '{rest}' must be RATE,PERIOD,DUTY"));
            }
            let rate = parse_rate(parts[0])?;
            let period_str = parts[1].trim();
            let period: f64 = period_str
                .strip_suffix('s')
                .unwrap_or(period_str)
                .parse()
                .map_err(|_| format!("burst period '{period_str}' is not a number"))?;
            if !period.is_finite() || period <= 0.0 {
                return Err(format!("burst period must be positive, got '{period_str}'"));
            }
            let duty_str = parts[2].trim();
            let duty: f64 = duty_str
                .parse()
                .map_err(|_| format!("burst duty '{duty_str}' is not a number"))?;
            if !duty.is_finite() || duty <= 0.0 || duty > 1.0 {
                return Err(format!("burst duty must be in (0, 1], got '{duty_str}'"));
            }
            return Ok(Arrival::Burst {
                rate,
                period: Duration::from_secs_f64(period),
                duty,
            });
        }
        Err(format!(
            "unknown arrival process '{spec}' \
             (expected closed, constant:RATE/s, poisson:RATE/s, or burst:RATE,PERIOD,DUTY)"
        ))
    }

    /// True for every open-loop process (everything but
    /// [`Arrival::Closed`]).
    pub fn is_open(&self) -> bool {
        !matches!(self, Arrival::Closed)
    }
}

impl fmt::Display for Arrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrival::Closed => write!(f, "closed"),
            Arrival::Constant { rate } => write!(f, "constant:{rate}/s"),
            Arrival::Poisson { rate } => write!(f, "poisson:{rate}/s"),
            Arrival::Burst { rate, period, duty } => {
                write!(f, "burst:{rate}/s,{}s,{duty}", period.as_secs_f64())
            }
        }
    }
}

/// The realized schedule of an open-loop [`Arrival`]: an infinite
/// iterator of intended-send offsets from the run start, computed purely
/// from the process parameters and the seed — never from the clock — so
/// a slow system cannot bend the schedule (that is the whole point).
pub struct ArrivalSchedule {
    arrival: Arrival,
    rng: SplitMix64,
    /// Next intended offset, in seconds from the run start.
    t: f64,
}

impl ArrivalSchedule {
    /// The schedule of `arrival` (must be open-loop).
    pub fn new(arrival: Arrival, seed: u64) -> Self {
        assert!(arrival.is_open(), "closed loop has no arrival schedule");
        ArrivalSchedule {
            arrival,
            rng: SplitMix64::new(seed),
            t: 0.0,
        }
    }
}

impl Iterator for ArrivalSchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        match self.arrival {
            Arrival::Closed => unreachable!("checked in new()"),
            Arrival::Constant { rate } => self.t += 1.0 / rate,
            Arrival::Poisson { rate } => {
                // Exponential inter-arrival via inverse transform;
                // 1 - u is in (0, 1], so ln() is finite.
                let u = self.rng.next_f64();
                self.t += -(1.0 - u).ln() / rate;
            }
            Arrival::Burst { rate, period, duty } => {
                let period = period.as_secs_f64();
                self.t += 1.0 / rate;
                // Landed in the off-phase: snap to the next period start.
                // The epsilon guards float modulo at period boundaries
                // (a snapped `t` is an exact multiple of `period` only
                // up to rounding, so `pos` may read ≈`period`, not 0).
                let pos = self.t % period;
                if pos > period * duty + 1e-9 && pos < period - 1e-9 {
                    self.t = (self.t / period).floor() * period + period;
                }
            }
        }
        Some(Duration::from_secs_f64(self.t))
    }
}

// ---------------------------------------------------------------------------
// The bounded request queue
// ---------------------------------------------------------------------------

/// One scheduled request: the mix slot to run and its intended send
/// offset from the run start.
#[derive(Debug, Clone, Copy)]
struct Request {
    slot: usize,
    offset: Duration,
}

/// A minimal bounded MPMC queue (mutex + condvars). `push` blocks when
/// full — backpressure on the schedule thread is safe because intended
/// send times are computed from the schedule, not from when the push
/// happens; the delay shows up where it belongs, in the queue-delay and
/// latency histograms.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks while full; returns `false` if the queue was closed.
    fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return false;
            }
            if state.items.len() < state.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return true;
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks while empty; returns `None` once closed **and** drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One template's outcomes in an open-loop run.
#[derive(Debug, Clone)]
pub struct TemplateReport {
    /// Template label.
    pub label: String,
    /// Its mix weight (as configured, not normalized).
    pub weight: f64,
    /// Recorded completions (excludes warmup).
    pub completed: u64,
    /// Recorded per-query timeouts.
    pub timeouts: u64,
    /// Recorded errors.
    pub errors: u64,
    /// Latency from intended send time.
    pub latency: LatencyHistogram,
}

/// A completed open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The arrival process that generated the schedule.
    pub arrival: Arrival,
    /// Worker clients that pulled from the queue.
    pub clients: usize,
    /// The sampler/schedule seed (same seed ⇒ same schedule).
    pub seed: u64,
    /// Configured warmup.
    pub warmup: Duration,
    /// Wall clock from schedule start to last completion.
    pub wall: Duration,
    /// Requests the schedule issued.
    pub issued: u64,
    /// Intended offset of the last issued request — the schedule's own
    /// span, which [`OpenLoopReport::intended_rate`] divides by.
    pub schedule_span: Duration,
    /// Observations excluded because they were intended during warmup.
    pub warmup_excluded: u64,
    /// Recorded completions.
    pub completed: u64,
    /// Recorded per-query timeouts.
    pub timeouts: u64,
    /// Recorded errors.
    pub errors: u64,
    /// Latency from *intended* send time — queueing included.
    pub latency: LatencyHistogram,
    /// Intended send → actual send.
    pub queue_delay: LatencyHistogram,
    /// Actual send → completion.
    pub service: LatencyHistogram,
    /// Per-template breakdown, in mix order.
    pub templates: Vec<TemplateReport>,
    /// Throughput/p99 time series ([`WINDOW_WIDTH`] wide windows).
    pub windows: Vec<WindowSnapshot>,
    /// Result cardinality per template, from the first recorded
    /// completion.
    pub counts: BTreeMap<String, u64>,
    /// Templates whose result count or checksum drifted between
    /// executions — always empty over a read-only store.
    pub inconsistent: Vec<String>,
}

impl OpenLoopReport {
    /// The rate the schedule asked for, realized: issued requests over
    /// the schedule's own span.
    pub fn intended_rate(&self) -> f64 {
        self.issued as f64 / self.schedule_span.as_secs_f64().max(1e-9)
    }

    /// Recorded completions per wall-clock second.
    pub fn completed_rate(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

// ---------------------------------------------------------------------------
// The open-loop driver
// ---------------------------------------------------------------------------

/// Cross-worker count/checksum stability state (the open-loop analogue
/// of [`crate::multiuser::ClientReport::counts`], shared because any
/// worker may run any template).
#[derive(Default)]
struct StabilityState {
    counts: BTreeMap<String, u64>,
    checksums: BTreeMap<String, u64>,
    inconsistent: Vec<String>,
}

/// Runs the open-loop workload in-process over `store` (the analogue of
/// [`crate::multiuser::run_multiuser`]).
pub fn run_open_loop(store: SharedStore, cfg: &MultiuserConfig) -> OpenLoopReport {
    run_open_loop_with(
        &InProcessTransport::new(store, cfg.parallelism).checksums(cfg.checksums),
        cfg,
    )
}

/// Drives an open-loop workload over any [`WorkTransport`]: a schedule
/// thread realizes `cfg.arrival` (which must be open-loop), stamping
/// each request with its intended send offset and pushing into a
/// bounded queue; `cfg.clients` workers pull and execute. With
/// [`StopCondition::Rounds`]`(r)` the schedule issues exactly
/// `r × clients × mix.len()` requests (the closed loop's volume);
/// with [`StopCondition::Duration`] it issues until the schedule offset
/// passes the duration, then the queue drains.
pub fn run_open_loop_with(transport: &dyn WorkTransport, cfg: &MultiuserConfig) -> OpenLoopReport {
    assert!(cfg.arrival.is_open(), "use run_multiuser for closed loop");
    assert!(!cfg.mix.is_empty(), "the query mix must not be empty");
    let weights: Vec<f64> = if cfg.weights.is_empty() {
        vec![1.0; cfg.mix.len()]
    } else {
        assert_eq!(
            cfg.weights.len(),
            cfg.mix.len(),
            "weights must parallel the mix"
        );
        cfg.weights.clone()
    };
    let clients = cfg.clients.max(1);
    let labels: Vec<String> = cfg.mix.iter().map(|i| i.label.clone()).collect();
    let recorder = WorkloadRecorder::new(&labels, cfg.warmup, WINDOW_WIDTH);
    let series: Vec<sp2b_obs::Histogram> =
        labels.iter().map(|l| template_latency_series(l)).collect();
    let stability_state = Mutex::new(StabilityState::default());
    let queue = BoundedQueue::new((clients * 2).max(8));
    let bound = match cfg.stop {
        StopCondition::Rounds(r) => {
            ScheduleBound::Count(r as u64 * clients as u64 * cfg.mix.len() as u64)
        }
        StopCondition::Duration(d) => ScheduleBound::Until(d),
    };
    let start = Instant::now();

    let (issued, schedule_span) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..clients)
            .map(|client| {
                let (recorder, series, stability_state, queue) =
                    (&recorder, &series, &stability_state, &queue);
                s.spawn(move || {
                    worker_loop(
                        client,
                        transport,
                        cfg,
                        start,
                        queue,
                        recorder,
                        series,
                        stability_state,
                    )
                })
            })
            .collect();
        let scheduled = schedule_loop(cfg, &weights, bound, start, &queue);
        queue.close();
        for w in workers {
            w.join().expect("worker thread panicked");
        }
        scheduled
    });
    let wall = start.elapsed();

    let templates: Vec<TemplateReport> = recorder
        .templates()
        .into_iter()
        .zip(&weights)
        .map(|(t, &weight)| TemplateReport {
            label: t.label,
            weight,
            completed: t.completed,
            timeouts: t.timeouts,
            errors: t.errors,
            latency: t.latency,
        })
        .collect();
    let stability_state = stability_state
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    OpenLoopReport {
        arrival: cfg.arrival,
        clients,
        seed: cfg.seed,
        warmup: cfg.warmup,
        wall,
        issued,
        schedule_span,
        warmup_excluded: recorder.warmup_excluded(),
        completed: templates.iter().map(|t| t.completed).sum(),
        timeouts: templates.iter().map(|t| t.timeouts).sum(),
        errors: templates.iter().map(|t| t.errors).sum(),
        latency: recorder.latency(),
        queue_delay: recorder.queue_delay(),
        service: recorder.service(),
        templates,
        windows: recorder.windows(),
        counts: stability_state.counts,
        inconsistent: stability_state.inconsistent,
    }
}

#[derive(Clone, Copy)]
enum ScheduleBound {
    Count(u64),
    Until(Duration),
}

/// The schedule thread body: realizes the arrival process, sleeping
/// until each intended send time and pushing the stamped request.
/// Returns `(issued, span of the schedule)`.
fn schedule_loop(
    cfg: &MultiuserConfig,
    weights: &[f64],
    bound: ScheduleBound,
    start: Instant,
    queue: &BoundedQueue<Request>,
) -> (u64, Duration) {
    let mut sampler = MixSampler::new(weights, cfg.seed);
    // A separate stream for the arrival gaps, so mix sampling and
    // schedule jitter don't entangle across replays.
    let schedule = ArrivalSchedule::new(cfg.arrival, cfg.seed.wrapping_add(0xD1B5_4A32_D192_ED03));
    let mut issued = 0u64;
    let mut span = Duration::ZERO;
    for offset in schedule {
        match bound {
            ScheduleBound::Count(n) if issued >= n => break,
            ScheduleBound::Until(d) if offset >= d => break,
            _ => {}
        }
        let slot = sampler.sample();
        // Sleep to the intended time, then push. The timestamp is the
        // *intended* offset either way — a backed-up queue delays the
        // push, not the clock the latency is measured from.
        if let Some(wait) = (start + offset).checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        if !queue.push(Request { slot, offset }) {
            break;
        }
        issued += 1;
        span = offset;
    }
    (issued, span)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    client: usize,
    transport: &dyn WorkTransport,
    cfg: &MultiuserConfig,
    start: Instant,
    queue: &BoundedQueue<Request>,
    recorder: &WorkloadRecorder,
    series: &[sp2b_obs::Histogram],
    stability_state: &Mutex<StabilityState>,
) {
    let SessionSetup {
        labels,
        failed: _,
        mut session,
    } = transport.open(client, &cfg.mix);
    // Mix slot → session slot; a template that failed setup maps to
    // `None` and every request drawn for it is recorded as an error.
    let slot_map: Vec<Option<usize>> = cfg
        .mix
        .iter()
        .map(|item| labels.iter().position(|l| *l == item.label))
        .collect();
    while let Some(req) = queue.pop() {
        let dequeued = Instant::now();
        let intended = start + req.offset;
        let Some(slot) = slot_map[req.slot] else {
            recorder.record_error(req.slot, req.offset);
            continue;
        };
        match session.execute(slot, dequeued + cfg.timeout) {
            ExecOutcome::Completed { rows, checksum } => {
                let end = Instant::now();
                let latency = end.saturating_duration_since(intended);
                let recorded = recorder.record_completed(
                    req.slot,
                    req.offset,
                    end.saturating_duration_since(start),
                    latency,
                    dequeued.saturating_duration_since(intended),
                    end.saturating_duration_since(dequeued),
                );
                if recorded {
                    series[req.slot].record(latency);
                    let label = &cfg.mix[req.slot].label;
                    let mut st = stability_state.lock().unwrap_or_else(|e| e.into_inner());
                    let count_unstable = stability(&mut st.counts, label, rows);
                    let checksum_unstable =
                        checksum.is_some_and(|cs| stability(&mut st.checksums, label, cs));
                    if (count_unstable || checksum_unstable) && !st.inconsistent.contains(label) {
                        st.inconsistent.push(label.clone());
                    }
                }
            }
            ExecOutcome::TimedOut => {
                recorder.record_timeout(req.slot, req.offset);
            }
            ExecOutcome::Failed => {
                recorder.record_error(req.slot, req.offset);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiuser::WorkSession;

    // -- the mix DSL --------------------------------------------------------

    #[test]
    fn mix_dsl_parses_labels_and_weights() {
        let mix = WeightedMix::parse("q1:80,q5a:15,A1:5").unwrap();
        let labels: Vec<&str> = mix.items.iter().map(|i| i.label.as_str()).collect();
        assert_eq!(labels, ["Q1", "Q5a", "A1"]);
        assert_eq!(mix.weights, [80.0, 15.0, 5.0]);
    }

    #[test]
    fn mix_dsl_rejects_malformed_entries() {
        let zero = WeightedMix::parse("q1:0").unwrap_err();
        assert!(zero.contains("must be positive"), "{zero}");
        let unknown = WeightedMix::parse("q99:5").unwrap_err();
        assert!(
            unknown.contains("unknown query template 'q99'"),
            "{unknown}"
        );
        let duplicate = WeightedMix::parse("q1:5,Q1:3").unwrap_err();
        assert!(duplicate.contains("duplicate template"), "{duplicate}");
        let missing = WeightedMix::parse("q1").unwrap_err();
        assert!(missing.contains("LABEL:WEIGHT"), "{missing}");
        let garbage = WeightedMix::parse("q1:eighty").unwrap_err();
        assert!(garbage.contains("not an integer"), "{garbage}");
        assert!(WeightedMix::parse("").is_err());
    }

    #[test]
    fn zipf_ranks_the_benchmark_mix_head_heavy() {
        let mix = WeightedMix::zipf(1.0).unwrap();
        assert_eq!(mix.items.len(), default_mix().len());
        assert_eq!(mix.items[0].label, "Q1");
        for pair in mix.weights.windows(2) {
            assert!(pair[0] > pair[1], "weights must strictly decrease");
        }
        assert!(WeightedMix::zipf(0.0).is_err());
        assert!(WeightedMix::zipf(f64::NAN).is_err());
    }

    // -- the sampler --------------------------------------------------------

    #[test]
    fn same_seed_draws_the_same_template_sequence() {
        let mix = WeightedMix::parse("q1:80,q5a:15,q8:5").unwrap();
        let mut a = MixSampler::new(&mix.weights, 42);
        let mut b = MixSampler::new(&mix.weights, 42);
        let seq_a: Vec<usize> = (0..100).map(|_| a.sample()).collect();
        let seq_b: Vec<usize> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(seq_a, seq_b, "deterministic replay");
        let mut c = MixSampler::new(&mix.weights, 43);
        let seq_c: Vec<usize> = (0..100).map(|_| c.sample()).collect();
        assert_ne!(seq_a, seq_c, "a different seed draws differently");
    }

    #[test]
    fn sampler_respects_the_weights() {
        let mut sampler = MixSampler::new(&[8.0, 1.0, 1.0], 7);
        let mut hits = [0u32; 3];
        for _ in 0..4_000 {
            hits[sampler.sample()] += 1;
        }
        let head = hits[0] as f64 / 4_000.0;
        assert!((0.72..0.88).contains(&head), "80% weight drew {head}");
        assert!(hits[1] > 0 && hits[2] > 0, "{hits:?}");
    }

    // -- arrival processes --------------------------------------------------

    #[test]
    fn arrival_specs_parse_and_render() {
        assert_eq!(Arrival::parse("closed").unwrap(), Arrival::Closed);
        assert_eq!(
            Arrival::parse("constant:5000/s").unwrap(),
            Arrival::Constant { rate: 5000.0 }
        );
        assert_eq!(
            Arrival::parse("poisson:12.5").unwrap(),
            Arrival::Poisson { rate: 12.5 }
        );
        let burst = Arrival::parse("burst:1000/s,2s,0.25").unwrap();
        assert_eq!(
            burst,
            Arrival::Burst {
                rate: 1000.0,
                period: Duration::from_secs(2),
                duty: 0.25
            }
        );
        assert_eq!(burst.to_string(), "burst:1000/s,2s,0.25");
        assert_eq!(
            Arrival::parse("poisson:200/s").unwrap().to_string(),
            "poisson:200/s"
        );
    }

    #[test]
    fn arrival_specs_reject_nonsense() {
        for bad in [
            "constant:0/s",
            "constant:-5",
            "poisson:0",
            "poisson:wat",
            "burst:100,0,0.5",
            "burst:100,1s,0",
            "burst:100,1s,1.5",
            "burst:100,1s",
            "uniform:5",
        ] {
            let err = Arrival::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad} must be rejected");
        }
        assert!(Arrival::parse("constant:0/s")
            .unwrap_err()
            .contains("must be positive"));
    }

    #[test]
    fn poisson_inter_arrival_mean_is_one_over_rate() {
        let rate = 1000.0;
        let offsets: Vec<Duration> = ArrivalSchedule::new(Arrival::Poisson { rate }, 11)
            .take(20_000)
            .collect();
        let mut sum = 0.0;
        for pair in offsets.windows(2) {
            sum += (pair[1] - pair[0]).as_secs_f64();
        }
        let mean = sum / (offsets.len() - 1) as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean gap {mean}, expected {expected}"
        );
    }

    #[test]
    fn poisson_schedule_is_deterministic_per_seed() {
        let a: Vec<Duration> = ArrivalSchedule::new(Arrival::Poisson { rate: 500.0 }, 3)
            .take(50)
            .collect();
        let b: Vec<Duration> = ArrivalSchedule::new(Arrival::Poisson { rate: 500.0 }, 3)
            .take(50)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn burst_schedule_stays_inside_the_duty_window() {
        let period = 0.05;
        let duty = 0.4;
        let schedule = ArrivalSchedule::new(
            Arrival::Burst {
                rate: 1000.0,
                period: Duration::from_secs_f64(period),
                duty,
            },
            0,
        );
        let mut in_first_window = 0;
        for offset in schedule.take(300) {
            let pos = offset.as_secs_f64() % period;
            // A period boundary may read as ≈`period` under float modulo.
            let pos = if pos >= period - 1e-6 { 0.0 } else { pos };
            assert!(
                pos <= period * duty + 1e-6,
                "offset {offset:?} lands in the off-phase"
            );
            if offset.as_secs_f64() < period {
                in_first_window += 1;
            }
        }
        // 1000/s over a 20 ms on-phase ⇒ ~20 requests per period.
        assert!((15..=25).contains(&in_first_window), "{in_first_window}");
    }

    // -- the open-loop driver ----------------------------------------------

    /// A transport whose sessions answer instantly with a per-slot row
    /// count — for determinism and accounting tests.
    struct InstantTransport;

    struct InstantSession;

    impl WorkTransport for InstantTransport {
        fn open(&self, _client: usize, mix: &[WorkItem]) -> SessionSetup {
            SessionSetup {
                labels: mix.iter().map(|i| i.label.clone()).collect(),
                failed: 0,
                session: Box::new(InstantSession),
            }
        }
    }

    impl WorkSession for InstantSession {
        fn execute(&mut self, slot: usize, _stop_at: Instant) -> ExecOutcome {
            ExecOutcome::Completed {
                rows: slot as u64 + 1,
                checksum: None,
            }
        }
    }

    /// A transport that stalls a fixed 100 ms per query — the
    /// coordinated-omission regression fixture.
    struct StalledTransport {
        delay: Duration,
    }

    struct StalledSession {
        delay: Duration,
    }

    impl WorkTransport for StalledTransport {
        fn open(&self, _client: usize, mix: &[WorkItem]) -> SessionSetup {
            SessionSetup {
                labels: mix.iter().map(|i| i.label.clone()).collect(),
                failed: 0,
                session: Box::new(StalledSession { delay: self.delay }),
            }
        }
    }

    impl WorkSession for StalledSession {
        fn execute(&mut self, _slot: usize, _stop_at: Instant) -> ExecOutcome {
            std::thread::sleep(self.delay);
            ExecOutcome::Completed {
                rows: 1,
                checksum: None,
            }
        }
    }

    fn open_cfg(clients: usize, stop: StopCondition) -> MultiuserConfig {
        let mut cfg = MultiuserConfig::new(clients, stop);
        cfg.mix = vec![
            WorkItem::bench(BenchQuery::Q1),
            WorkItem::bench(BenchQuery::Q8),
        ];
        cfg.weights = vec![9.0, 1.0];
        cfg.arrival = Arrival::Constant { rate: 2_000.0 };
        cfg.seed = 42;
        cfg
    }

    #[test]
    fn open_loop_accounting_adds_up_and_replays_deterministically() {
        let cfg = open_cfg(2, StopCondition::Rounds(25));
        let a = run_open_loop_with(&InstantTransport, &cfg);
        // Rounds ⇒ exactly rounds × clients × mix.len() scheduled.
        assert_eq!(a.issued, 25 * 2 * 2);
        assert_eq!(
            a.issued,
            a.completed + a.timeouts + a.errors + a.warmup_excluded
        );
        assert_eq!(a.errors, 0);
        assert_eq!(a.templates.len(), 2);
        assert!(
            a.templates[0].completed > a.templates[1].completed,
            "9:1 mix"
        );
        // Per-slot row counts are constant, so stability must hold.
        assert!(a.inconsistent.is_empty());
        assert_eq!(a.counts["Q1"], 1);
        assert_eq!(a.counts["Q8"], 2);
        assert!(a.intended_rate() > 0.0);
        assert!(!a.windows.is_empty());

        let b = run_open_loop_with(&InstantTransport, &cfg);
        assert_eq!(a.issued, b.issued);
        for (ta, tb) in a.templates.iter().zip(&b.templates) {
            assert_eq!(ta.completed, tb.completed, "same seed, same draws");
        }
    }

    #[test]
    fn warmup_is_excluded_but_tallied() {
        let mut cfg = open_cfg(1, StopCondition::Rounds(10));
        cfg.mix.truncate(1);
        cfg.weights.truncate(1);
        cfg.arrival = Arrival::Constant { rate: 100.0 };
        cfg.warmup = Duration::from_millis(100);
        let report = run_open_loop_with(&InstantTransport, &cfg);
        assert_eq!(report.issued, 10);
        assert!(report.warmup_excluded > 0, "the first ~10 are warmup");
        assert!(report.completed > 0, "later requests are recorded");
        assert_eq!(report.completed + report.warmup_excluded, report.issued);
        assert_eq!(report.latency.count(), report.completed);
    }

    /// The coordinated-omission regression: a transport that stalls
    /// 100 ms per query is driven at 100/s by a single worker, so the
    /// queue backs up and the *observed* latency must include that
    /// queueing — a closed-loop measurement would report ~100 ms flat
    /// (and a naive "measure from actual send" open loop even less).
    #[test]
    fn stalled_transport_latency_includes_queue_delay() {
        let mut cfg = open_cfg(1, StopCondition::Rounds(8));
        cfg.mix.truncate(1);
        cfg.weights.truncate(1);
        cfg.arrival = Arrival::Constant { rate: 100.0 }; // 10 ms spacing
        let transport = StalledTransport {
            delay: Duration::from_millis(100),
        };
        let report = run_open_loop_with(&transport, &cfg);
        assert_eq!(report.issued, 8);
        assert_eq!(report.completed, 8);
        // Intended sends are 10 ms apart but service is 100 ms, so the
        // backlog grows ~90 ms per request; the p99 must reflect the
        // worst queueing, not the 100 ms service time — and certainly
        // not sub-millisecond.
        assert!(
            report.latency.quantile(0.99) >= Duration::from_millis(250),
            "p99 {:?} hides the queue",
            report.latency.quantile(0.99)
        );
        assert!(
            report.latency.quantile(0.50) >= Duration::from_millis(100),
            "p50 {:?}",
            report.latency.quantile(0.50)
        );
        // The decomposition shows where the time went.
        assert!(
            report.queue_delay.max() >= Duration::from_millis(200),
            "queue delay max {:?}",
            report.queue_delay.max()
        );
        let p50_service = report.service.quantile(0.50);
        assert!(
            (Duration::from_millis(50)..Duration::from_secs(2)).contains(&p50_service),
            "service p50 {p50_service:?}"
        );
    }

    #[test]
    fn failed_setup_slots_surface_as_errors() {
        /// Prepares only the first template; the rest fail setup.
        struct HalfTransport;
        impl WorkTransport for HalfTransport {
            fn open(&self, _client: usize, mix: &[WorkItem]) -> SessionSetup {
                SessionSetup {
                    labels: vec![mix[0].label.clone()],
                    failed: (mix.len() - 1) as u64,
                    session: Box::new(InstantSession),
                }
            }
        }
        let cfg = open_cfg(1, StopCondition::Rounds(20));
        let report = run_open_loop_with(&HalfTransport, &cfg);
        assert_eq!(report.issued, 40);
        assert!(report.errors > 0, "Q8 draws must error");
        assert_eq!(report.templates[1].errors, report.errors);
        assert_eq!(
            report.issued,
            report.completed + report.timeouts + report.errors + report.warmup_excluded
        );
    }
}
