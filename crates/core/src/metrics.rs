//! The benchmark metrics of Section VI-B.
//!
//! The paper reports wall-clock (`tme`), user/system CPU time (`usr`,
//! `sys`, from the proc file system) and the resident-memory high
//! watermark (`rmem`). We read the same counters from `/proc/self/stat`
//! (fields 14/15) and `/proc/self/status` (`VmHWM`/`VmRSS`); on non-Linux
//! platforms the CPU/memory channels degrade to `None` and only `tme` is
//! reported. The aggregate metrics — arithmetic and geometric mean with a
//! 3600 s penalty for failed queries — follow Section VI-B item 4.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Failed queries are ranked with 3600 s in the means, "to penalize
/// timeouts and other errors" (Section VI-B).
pub const PENALTY_SECONDS: f64 = 3600.0;

/// A point-in-time reading of this process' CPU/memory counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProcSample {
    /// Cumulative user-mode CPU time.
    pub utime: Duration,
    /// Cumulative kernel-mode CPU time.
    pub stime: Duration,
    /// Peak resident set size, in KiB (`VmHWM`).
    pub vm_hwm_kib: Option<u64>,
    /// Current resident set size, in KiB (`VmRSS`).
    pub vm_rss_kib: Option<u64>,
}

/// Clock ticks per second for `/proc/self/stat` (usually 100 on Linux).
fn clock_ticks_per_second() -> u64 {
    static TICKS: OnceLock<u64> = OnceLock::new();
    *TICKS.get_or_init(|| {
        std::process::Command::new("getconf")
            .arg("CLK_TCK")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(100)
    })
}

/// Reads the current process sample; `None` off Linux.
pub fn sample_proc() -> Option<ProcSample> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 is `(comm)` and may contain spaces; skip past the final ')'.
    let after = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after.split_whitespace().collect();
    // After the comm field: state=0, ..., utime is overall field 14 →
    // index 11 here, stime index 12.
    let ticks = clock_ticks_per_second();
    let to_duration = |v: &str| -> Option<Duration> {
        let t: u64 = v.parse().ok()?;
        Some(Duration::from_secs_f64(t as f64 / ticks as f64))
    };
    let utime = to_duration(fields.get(11)?)?;
    let stime = to_duration(fields.get(12)?)?;

    let status = std::fs::read_to_string("/proc/self/status").ok();
    let grab = |key: &str| -> Option<u64> {
        status
            .as_deref()?
            .lines()
            .find(|l| l.starts_with(key))?
            .split_whitespace()
            .nth(1)?
            .parse()
            .ok()
    };
    Some(ProcSample {
        utime,
        stime,
        vm_hwm_kib: grab("VmHWM:"),
        vm_rss_kib: grab("VmRSS:"),
    })
}

/// One timed measurement: `tme` plus CPU deltas and the memory watermark
/// observed after the measured section.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Measurement {
    /// Elapsed wall-clock time.
    pub tme: Duration,
    /// User CPU time consumed by the section (whole process).
    pub usr: Option<Duration>,
    /// System CPU time consumed by the section (whole process).
    pub sys: Option<Duration>,
    /// Peak resident memory after the section, KiB.
    pub rmem_kib: Option<u64>,
}

impl Measurement {
    /// Formats like the paper's plots: `tme` always, `usr+sys` if known.
    pub fn summary(&self) -> String {
        match (self.usr, self.sys) {
            (Some(u), Some(s)) => format!(
                "tme={:.4}s usr+sys={:.4}s",
                self.tme.as_secs_f64(),
                (u + s).as_secs_f64()
            ),
            _ => format!("tme={:.4}s", self.tme.as_secs_f64()),
        }
    }
}

/// Runs `f`, measuring wall-clock and CPU deltas around it.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Measurement) {
    let before = sample_proc();
    let start = Instant::now();
    let value = f();
    let tme = start.elapsed();
    let after = sample_proc();
    let m = match (before, after) {
        (Some(b), Some(a)) => Measurement {
            tme,
            usr: Some(a.utime.saturating_sub(b.utime)),
            sys: Some(a.stime.saturating_sub(b.stime)),
            // Sandboxed kernels often hide VmHWM; current RSS is the
            // closest observable proxy for the watermark then.
            rmem_kib: a.vm_hwm_kib.or(a.vm_rss_kib),
        },
        _ => Measurement {
            tme,
            ..Default::default()
        },
    };
    (value, m)
}

/// Arithmetic mean of seconds.
pub fn arithmetic_mean(times: &[f64]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.iter().sum::<f64>() / times.len() as f64
}

/// Geometric mean of seconds: "the nth root of the product over n
/// numbers" — computed in log space for stability.
pub fn geometric_mean(times: &[f64]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = times.iter().map(|t| t.max(1e-9).ln()).sum();
    (log_sum / times.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_sampling_works_on_linux() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let s = sample_proc().expect("Linux must expose /proc/self");
        assert!(s.vm_rss_kib.unwrap_or(0) > 0, "process uses memory");
    }

    #[test]
    fn measure_times_the_section() {
        let ((), m) = measure(|| std::thread::sleep(Duration::from_millis(30)));
        assert!(m.tme >= Duration::from_millis(25), "{:?}", m.tme);
    }

    #[test]
    fn cpu_time_accumulates_under_load() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let (sum, m) = measure(|| {
            // ~50 ms of CPU spin.
            let mut acc: u64 = 0;
            let start = Instant::now();
            while start.elapsed() < Duration::from_millis(60) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        assert_ne!(sum, 1); // defeat optimizer
        let usr = m.usr.unwrap() + m.sys.unwrap();
        assert!(usr >= Duration::from_millis(10), "usr+sys {usr:?}");
    }

    #[test]
    fn means_match_hand_computation() {
        let times = [1.0, 4.0, 16.0];
        assert!((arithmetic_mean(&times) - 7.0).abs() < 1e-12);
        assert!((geometric_mean(&times) - 4.0).abs() < 1e-9);
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_moderates_outliers() {
        // The paper: "The geometric mean moderates the impact of these
        // outliers."
        let with_penalty = [0.01, 0.02, PENALTY_SECONDS];
        let geo = geometric_mean(&with_penalty);
        let arith = arithmetic_mean(&with_penalty);
        assert!(geo < arith / 10.0, "geo {geo} vs arith {arith}");
    }
}
