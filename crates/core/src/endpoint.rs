//! The HTTP side of the multi-user driver: a minimal, std-only SPARQL
//! Protocol **client** plus the [`HttpTransport`] implementation of
//! [`WorkTransport`], so `sp2b multiuser --endpoint http://…` drives
//! real sockets — connection setup, request framing, response parsing,
//! result-set transfer — through exactly the same histogram/report
//! pipeline as the in-process driver.
//!
//! The client speaks just enough HTTP/1.1 for the endpoint protocol:
//! `POST` with an `application/sparql-query` body, keep-alive connection
//! reuse (with one reconnect on a stale pooled connection),
//! `Content-Length` and chunked response bodies, and per-request socket
//! timeouts mapped to the driver's timeout accounting.
//!
//! Result counting ([`count_result_rows`]) understands the three wire
//! formats the server produces — TSV/CSV row counting (quote-aware for
//! CSV), `text/boolean` ASK bodies, and SPARQL JSON (`bindings` array /
//! `boolean` member) — so transported counts are comparable with
//! in-process [`sp2b_sparql::QueryEngine::count`] values.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::multiuser::{ExecOutcome, SessionSetup, WorkItem, WorkSession, WorkTransport};

/// A parsed `http://host:port/path` endpoint URL.
#[derive(Debug, Clone)]
pub struct Endpoint {
    /// Host (name or literal address).
    pub host: String,
    /// Port (default 80).
    pub port: u16,
    /// Request path (default `/sparql`).
    pub path: String,
}

impl Endpoint {
    /// Parses an endpoint URL. Only `http://` is supported (the server
    /// is plaintext HTTP); a missing path defaults to `/sparql`.
    pub fn parse(url: &str) -> Result<Endpoint, String> {
        let rest = url
            .trim()
            .strip_prefix("http://")
            .ok_or_else(|| format!("endpoint '{url}' must be an http:// URL"))?;
        let (authority, path) = match rest.split_once('/') {
            Some((a, p)) => (a, format!("/{p}")),
            None => (rest, "/sparql".to_owned()),
        };
        if authority.is_empty() {
            return Err(format!("endpoint '{url}' is missing a host"));
        }
        let (host, port) = if let Some(rest) = authority.strip_prefix('[') {
            // Bracketed IPv6 literal: `[::1]:8088` or `[::1]`.
            let (host, after) = rest
                .split_once(']')
                .ok_or_else(|| format!("unclosed '[' in endpoint '{url}'"))?;
            let port = match after.strip_prefix(':') {
                Some(p) => p
                    .parse::<u16>()
                    .map_err(|_| format!("invalid port in endpoint '{url}'"))?,
                None if after.is_empty() => 80,
                None => return Err(format!("malformed authority in endpoint '{url}'")),
            };
            (host.to_owned(), port)
        } else if authority.matches(':').count() > 1 {
            // An unbracketed IPv6 literal is ambiguous (`::1` would split
            // into host `:` and "port" `1`): require brackets.
            return Err(format!(
                "IPv6 endpoint hosts must be bracketed, e.g. http://[::1]:8088/sparql (got '{url}')"
            ));
        } else {
            match authority.rsplit_once(':') {
                Some((h, p)) => (
                    h.to_owned(),
                    p.parse::<u16>()
                        .map_err(|_| format!("invalid port in endpoint '{url}'"))?,
                ),
                None => (authority.to_owned(), 80),
            }
        };
        if host.is_empty() {
            return Err(format!("endpoint '{url}' is missing a host"));
        }
        Ok(Endpoint { host, port, path })
    }

    /// The canonical URL form (IPv6 hosts re-bracketed).
    pub fn url(&self) -> String {
        if self.host.contains(':') {
            format!("http://[{}]:{}{}", self.host, self.port, self.path)
        } else {
            format!("http://{}:{}{}", self.host, self.port, self.path)
        }
    }
}

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
    /// Whether the connection may be reused afterwards.
    pub keep_alive: bool,
}

impl HttpResponse {
    /// First header value by name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// The media type (parameters stripped), lower-cased.
    pub fn content_type(&self) -> String {
        self.header("content-type")
            .map(|ct| {
                ct.split(';')
                    .next()
                    .unwrap_or(ct)
                    .trim()
                    .to_ascii_lowercase()
            })
            .unwrap_or_default()
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to an endpoint.
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects (bounded by `timeout`).
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> io::Result<Connection> {
        let addr = (endpoint.host.as_str(), endpoint.port)
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "endpoint did not resolve"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::with_capacity(16 * 1024, stream.try_clone()?);
        Ok(Connection {
            writer: stream,
            reader,
        })
    }

    /// Sends one request and reads the full response. `timeout` bounds
    /// every read/write on the socket.
    pub fn request(
        &mut self,
        endpoint: &Endpoint,
        method: &str,
        target: &str,
        accept: &str,
        body: Option<(&str, &[u8])>,
        timeout: Duration,
    ) -> io::Result<HttpResponse> {
        let timeout = timeout.max(Duration::from_millis(1));
        self.writer.set_write_timeout(Some(timeout))?;
        self.writer.set_read_timeout(Some(timeout))?;
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}:{}\r\nAccept: {accept}\r\nUser-Agent: sp2b-multiuser\r\n",
            endpoint.host, endpoint.port
        );
        if let Some((content_type, payload)) = body {
            head.push_str(&format!(
                "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
                payload.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some((_, payload)) = body {
            self.writer.write_all(payload)?;
        }
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = Vec::new();
        let n = self.reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
            line.pop();
        }
        String::from_utf8(line)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split_whitespace();
        let version = parts.next().unwrap_or("");
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
            }
        }
        let find = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str())
        };
        let chunked = find("transfer-encoding").is_some_and(|t| t.eq_ignore_ascii_case("chunked"));
        let mut body = Vec::new();
        let mut length_delimited = true;
        if chunked {
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed chunk size")
                })?;
                if size == 0 {
                    // Trailer section: read through the blank line.
                    loop {
                        if self.read_line()?.is_empty() {
                            break;
                        }
                    }
                    break;
                }
                let start = body.len();
                body.resize(start + size, 0);
                self.reader.read_exact(&mut body[start..])?;
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf)?;
            }
        } else if let Some(n) = find("content-length") {
            let n: usize = n
                .trim()
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
            body.resize(n, 0);
            self.reader.read_exact(&mut body)?;
        } else {
            // Close-delimited (HTTP/1.0-style streaming).
            self.reader.read_to_end(&mut body)?;
            length_delimited = false;
        }
        let keep_alive = length_delimited
            && version == "HTTP/1.1"
            && !find("connection").is_some_and(|c| c.eq_ignore_ascii_case("close"));
        Ok(HttpResponse {
            status,
            headers,
            body,
            keep_alive,
        })
    }
}

/// Issues one query over a fresh connection (tests, probes).
pub fn query_once(
    endpoint: &Endpoint,
    query: &str,
    accept: &str,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut conn = Connection::connect(endpoint, timeout)?;
    conn.request(
        endpoint,
        "POST",
        &endpoint.path,
        accept,
        Some(("application/sparql-query", query.as_bytes())),
        timeout,
    )
}

/// An **order-insensitive** 64-bit result checksum: every data row
/// hashes independently (Fx over its TSV-encoded bytes) and rows
/// combine by wrapping addition, so any permutation of the same row
/// multiset — parallel morsel order, shard order, network reordering —
/// folds to the same value, while a changed, missing or duplicated row
/// changes it. This is what lets `sp2b multiuser --endpoint` assert
/// *correctness* (same rows), not just cardinality, against in-process
/// runs: both sides fold the same TSV serialization
/// ([`sp2b_sparql::results::write_tsv`]) — the server on the wire, the
/// in-process transport through [`ChecksumWriter`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResultChecksum {
    fold: u64,
}

impl ResultChecksum {
    /// An empty checksum (the value of a zero-row result).
    pub fn new() -> Self {
        ResultChecksum::default()
    }

    /// Folds one data row (its line bytes, without the terminator).
    pub fn add_row(&mut self, line: &[u8]) {
        use std::hash::Hasher as _;
        let mut h = sp2b_store::hash::FxHasher::default();
        h.write(line);
        self.fold = self.fold.wrapping_add(h.finish());
    }

    /// The folded value.
    pub fn value(&self) -> u64 {
        self.fold
    }
}

/// Folds a response body's checksum by media type: every TSV line after
/// the header (CR stripped) is one row; a `text/boolean` body is its
/// single `true`/`false` line. `None` for media types the checksum is
/// not defined over (JSON/CSV runs still compare by count).
pub fn body_checksum(content_type: &str, body: &[u8]) -> Option<u64> {
    let skip_header = match content_type {
        "text/tab-separated-values" => true,
        "text/boolean" => false,
        _ => return None,
    };
    let mut checksum = ResultChecksum::new();
    let mut lines = body.split(|&b| b == b'\n').peekable();
    let mut first = true;
    while let Some(line) = lines.next() {
        // A trailing newline leaves one empty final fragment — not a row.
        if lines.peek().is_none() && line.is_empty() {
            break;
        }
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if first && skip_header {
            first = false;
            continue;
        }
        first = false;
        checksum.add_row(line);
    }
    Some(checksum.value())
}

/// An [`io::Write`] sink folding a streamed TSV (or `text/boolean`)
/// serialization into a [`ResultChecksum`] line by line — the
/// in-process side of the checksum comparison, fed by
/// [`sp2b_sparql::results::write_solutions`] so no result ever
/// materializes.
pub struct ChecksumWriter {
    checksum: ResultChecksum,
    line: Vec<u8>,
    skip_lines: usize,
}

impl ChecksumWriter {
    /// A sink for a SELECT TSV stream (`skip_header = true`: the `?var`
    /// header line is not a row) or an ASK boolean line
    /// (`skip_header = false`).
    pub fn new(skip_header: bool) -> Self {
        ChecksumWriter {
            checksum: ResultChecksum::new(),
            line: Vec::new(),
            skip_lines: usize::from(skip_header),
        }
    }

    fn complete_line(&mut self) {
        if self.line.last() == Some(&b'\r') {
            self.line.pop();
        }
        if self.skip_lines > 0 {
            self.skip_lines -= 1;
        } else {
            self.checksum.add_row(&self.line);
        }
        self.line.clear();
    }

    /// Finishes the fold (flushing a final unterminated line) and
    /// returns the checksum.
    pub fn finish(mut self) -> u64 {
        if !self.line.is_empty() {
            self.complete_line();
        }
        self.checksum.value()
    }
}

impl Write for ChecksumWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            if b == b'\n' {
                self.complete_line();
            } else {
                self.line.push(b);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Counts result rows in a response body, by media type: data rows for
/// CSV/TSV (header excluded; CSV counting is quote-aware), the
/// `bindings` array length (or `boolean` as 1/0) for SPARQL JSON, and
/// `true`/`false` for `text/boolean` — the value that matches
/// `QueryEngine::count` for the same query.
pub fn count_result_rows(content_type: &str, body: &[u8]) -> Result<u64, String> {
    match content_type {
        "text/boolean" => Ok(u64::from(
            std::str::from_utf8(body).unwrap_or("").trim() == "true",
        )),
        "text/csv" => Ok(count_csv_records(body).saturating_sub(1)),
        "text/tab-separated-values" => {
            let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
            Ok((text.lines().count() as u64).saturating_sub(1))
        }
        "application/sparql-results+json" => count_json_results(body),
        other => Err(format!("cannot count rows of content type '{other}'")),
    }
}

/// Number of CSV records (quote-aware: newlines inside quoted fields do
/// not terminate a record).
fn count_csv_records(body: &[u8]) -> u64 {
    let mut records = 0u64;
    let mut in_quotes = false;
    let mut line_has_bytes = false;
    for &b in body {
        match b {
            b'"' => {
                in_quotes = !in_quotes;
                line_has_bytes = true;
            }
            b'\n' if !in_quotes => {
                records += 1;
                line_has_bytes = false;
            }
            b'\r' => {}
            _ => line_has_bytes = true,
        }
    }
    records + u64::from(line_has_bytes)
}

/// Finds the value position of a `"key":` *member* (the quoted key
/// followed, after optional whitespace, by a colon), returning the
/// text after the colon. A JSON string whose entire value equals the
/// key is followed by `,`/`}`/`]`, never `:`, so data cannot spoof a
/// member; a quote *inside* a string value is escaped as `\"`, so the
/// quoted needle cannot start mid-string either.
fn find_member<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let mut search = text;
    while let Some(pos) = search.find(&needle) {
        let rest = search[pos + needle.len()..].trim_start();
        if let Some(value) = rest.strip_prefix(':') {
            return Some(value);
        }
        search = &search[pos + needle.len()..];
    }
    None
}

/// Counts a SPARQL JSON result: the number of objects directly inside
/// the `results.bindings` array, or (for ASK) the `boolean` member as
/// 1/0. A tiny string-and-depth-aware scan — not a JSON parser, but
/// exact for any spec-shaped result document, including results whose
/// *data* (or variable names) contain the words `bindings`/`boolean`:
/// SELECT documents are recognized by the `bindings` member first, so
/// the boolean path only ever runs on ASK documents, which have no
/// variables or data.
fn count_json_results(body: &[u8]) -> Result<u64, String> {
    let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
    let Some(after) = find_member(text, "bindings") else {
        let Some(rest) = find_member(text, "boolean") else {
            return Err("response has neither bindings nor boolean".into());
        };
        return match rest.trim_start() {
            r if r.starts_with("true") => Ok(1),
            r if r.starts_with("false") => Ok(0),
            _ => Err("malformed boolean result".into()),
        };
    };
    let Some(bracket) = after.find('[') else {
        return Err("bindings is not an array".into());
    };
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    let mut rows = 0u64;
    for c in after[bracket + 1..].chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    rows += 1;
                }
                depth += 1;
            }
            '}' => depth -= 1,
            '[' => depth += 1,
            ']' => {
                if depth == 0 {
                    return Ok(rows);
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    Err("unterminated bindings array".into())
}

// ---------------------------------------------------------------------------
// The HTTP transport
// ---------------------------------------------------------------------------

/// Extra socket-read grace past the per-query deadline, so a server-side
/// `408` (whose timeout the operator configures separately) can still
/// arrive and be accounted as a timeout rather than a transport error.
const READ_GRACE: Duration = Duration::from_millis(500);

/// [`WorkTransport`] over real sockets: every client session posts its
/// queries to the endpoint (`Accept: text/tab-separated-values`, the
/// cheapest format to count) over a kept-alive connection.
pub struct HttpTransport {
    endpoint: Endpoint,
    connect_timeout: Duration,
}

impl HttpTransport {
    /// A transport for `endpoint` (see [`Endpoint::parse`]).
    pub fn new(endpoint: Endpoint) -> HttpTransport {
        HttpTransport {
            endpoint,
            connect_timeout: Duration::from_secs(5),
        }
    }

    /// The endpoint driven.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }
}

impl WorkTransport for HttpTransport {
    fn open(&self, _client: usize, mix: &[WorkItem]) -> SessionSetup {
        SessionSetup {
            labels: mix.iter().map(|item| item.label.clone()).collect(),
            failed: 0,
            session: Box::new(HttpSession {
                endpoint: self.endpoint.clone(),
                connect_timeout: self.connect_timeout,
                texts: mix.iter().map(|item| item.text.clone()).collect(),
                connection: None,
            }),
        }
    }
}

struct HttpSession {
    endpoint: Endpoint,
    connect_timeout: Duration,
    texts: Vec<String>,
    connection: Option<Connection>,
}

impl HttpSession {
    fn request(&mut self, slot: usize, timeout: Duration) -> io::Result<HttpResponse> {
        let reused = self.connection.is_some();
        let mut conn = match self.connection.take() {
            Some(c) => c,
            None => Connection::connect(&self.endpoint, self.connect_timeout)?,
        };
        let result = conn.request(
            &self.endpoint,
            "POST",
            &self.endpoint.path,
            "text/tab-separated-values",
            Some(("application/sparql-query", self.texts[slot].as_bytes())),
            timeout,
        );
        match result {
            Ok(response) => {
                if response.keep_alive {
                    self.connection = Some(conn);
                }
                Ok(response)
            }
            Err(e) if reused && !is_timeout(&e) => {
                // The pooled connection went stale (server closed it
                // between requests): retry once on a fresh one.
                let mut conn = Connection::connect(&self.endpoint, self.connect_timeout)?;
                let response = conn.request(
                    &self.endpoint,
                    "POST",
                    &self.endpoint.path,
                    "text/tab-separated-values",
                    Some(("application/sparql-query", self.texts[slot].as_bytes())),
                    timeout,
                )?;
                if response.keep_alive {
                    self.connection = Some(conn);
                }
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }
}

impl WorkSession for HttpSession {
    fn execute(&mut self, slot: usize, stop_at: Instant) -> ExecOutcome {
        let remaining = stop_at.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return ExecOutcome::TimedOut;
        }
        match self.request(slot, remaining + READ_GRACE) {
            Ok(response) => match response.status {
                200 => {
                    let content_type = response.content_type();
                    match count_result_rows(&content_type, &response.body) {
                        Ok(rows) => ExecOutcome::Completed {
                            rows,
                            // TSV bodies carry the order-insensitive
                            // checksum for free — count *and* content
                            // stability get asserted.
                            checksum: body_checksum(&content_type, &response.body),
                        },
                        Err(_) => ExecOutcome::Failed,
                    }
                }
                408 => ExecOutcome::TimedOut,
                _ => ExecOutcome::Failed,
            },
            Err(e) if is_timeout(&e) => {
                // The socket timed out: the connection state is unknown,
                // drop it.
                self.connection = None;
                ExecOutcome::TimedOut
            }
            Err(_) => {
                self.connection = None;
                ExecOutcome::Failed
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_urls_parse() {
        let ep = Endpoint::parse("http://127.0.0.1:8088/sparql").unwrap();
        assert_eq!(ep.host, "127.0.0.1");
        assert_eq!(ep.port, 8088);
        assert_eq!(ep.path, "/sparql");
        assert_eq!(ep.url(), "http://127.0.0.1:8088/sparql");

        let ep = Endpoint::parse("http://example.org").unwrap();
        assert_eq!((ep.port, ep.path.as_str()), (80, "/sparql"));

        assert!(Endpoint::parse("https://x/").is_err());
        assert!(Endpoint::parse("http://").is_err());
        assert!(Endpoint::parse("http://h:port/x").is_err());
    }

    #[test]
    fn ipv6_endpoints_require_and_honour_brackets() {
        let ep = Endpoint::parse("http://[::1]:8088/sparql").unwrap();
        assert_eq!(ep.host, "::1");
        assert_eq!(ep.port, 8088);
        assert_eq!(ep.url(), "http://[::1]:8088/sparql");
        let ep = Endpoint::parse("http://[2001:db8::2]/q").unwrap();
        assert_eq!(
            (ep.host.as_str(), ep.port, ep.path.as_str()),
            ("2001:db8::2", 80, "/q")
        );
        // Unbracketed IPv6 is ambiguous and rejected, not mis-split.
        assert!(Endpoint::parse("http://::1/sparql").is_err());
        assert!(Endpoint::parse("http://[::1/sparql").is_err());
        assert!(Endpoint::parse("http://[::1]junk/sparql").is_err());
    }

    #[test]
    fn csv_and_tsv_row_counting() {
        let csv = b"s,v\r\na,1\r\n\"multi\nline\",2\r\n";
        assert_eq!(count_result_rows("text/csv", csv).unwrap(), 2);
        assert_eq!(count_result_rows("text/csv", b"s,v\r\n").unwrap(), 0);
        let tsv = b"?s\t?v\n<a>\t\"1\"\n<b>\t\"2\"\n<c>\t\"3\"\n";
        assert_eq!(
            count_result_rows("text/tab-separated-values", tsv).unwrap(),
            3
        );
        assert_eq!(count_result_rows("text/boolean", b"true\n").unwrap(), 1);
        assert_eq!(count_result_rows("text/boolean", b"false\n").unwrap(), 0);
        assert!(count_result_rows("application/xml", b"").is_err());
    }

    #[test]
    fn checksum_is_order_insensitive_but_content_sensitive() {
        let a = b"?s\t?v\n<a>\t\"1\"\n<b>\t\"2\"\n";
        let b = b"?s\t?v\n<b>\t\"2\"\n<a>\t\"1\"\n";
        let c = b"?s\t?v\n<a>\t\"1\"\n<b>\t\"3\"\n";
        let ct = "text/tab-separated-values";
        assert_eq!(
            body_checksum(ct, a),
            body_checksum(ct, b),
            "order must not matter"
        );
        assert_ne!(
            body_checksum(ct, a),
            body_checksum(ct, c),
            "content must matter"
        );
        // A duplicated row changes the fold (multiset, not set).
        let dup = b"?s\t?v\n<a>\t\"1\"\n<a>\t\"1\"\n<b>\t\"2\"\n";
        assert_ne!(body_checksum(ct, a), body_checksum(ct, dup));
        // CRLF line endings fold identically to bare LF.
        let crlf = b"?s\t?v\r\n<a>\t\"1\"\r\n<b>\t\"2\"\r\n";
        assert_eq!(body_checksum(ct, a), body_checksum(ct, crlf));
        // Unsupported media types have no checksum; boolean bodies do.
        assert_eq!(body_checksum("text/csv", a), None);
        assert!(body_checksum("text/boolean", b"true\n").is_some());
        assert_ne!(
            body_checksum("text/boolean", b"true\n"),
            body_checksum("text/boolean", b"false\n")
        );
    }

    #[test]
    fn checksum_writer_matches_body_checksum() {
        let body: &[u8] = b"?s\t?v\n<a>\t\"1\"\n\n<b>\t\"2\"\n";
        // Feed the streamed sink in awkward split writes.
        let mut w = ChecksumWriter::new(true);
        for chunk in [&body[..3], &body[3..10], &body[10..]] {
            w.write_all(chunk).unwrap();
        }
        assert_eq!(
            Some(w.finish()),
            body_checksum("text/tab-separated-values", body),
            "streamed fold must equal the whole-body fold (incl. the empty row line)"
        );
        // ASK: no header to skip.
        let mut w = ChecksumWriter::new(false);
        w.write_all(b"true\n").unwrap();
        assert_eq!(Some(w.finish()), body_checksum("text/boolean", b"true\n"));
        // A final unterminated line still counts as a row.
        let mut w = ChecksumWriter::new(true);
        w.write_all(b"?s\n<a>").unwrap();
        assert_eq!(
            Some(w.finish()),
            body_checksum("text/tab-separated-values", b"?s\n<a>")
        );
    }

    #[test]
    fn json_result_counting() {
        let json = br#"{"head":{"vars":["s"]},"results":{"bindings":[
            {"s":{"type":"uri","value":"http://x/a"}},
            {"s":{"type":"literal","value":"tricky ] } [ { \" {"}},
            {"s":{"type":"bnode","value":"b0"}}]}}"#;
        assert_eq!(
            count_result_rows("application/sparql-results+json", json).unwrap(),
            3
        );
        let empty = br#"{"head":{"vars":[]},"results":{"bindings":[]}}"#;
        assert_eq!(
            count_result_rows("application/sparql-results+json", empty).unwrap(),
            0
        );
        let ask = br#"{"head":{},"boolean":true}"#;
        assert_eq!(
            count_result_rows("application/sparql-results+json", ask).unwrap(),
            1
        );
        let no = br#"{"head":{},"boolean":false}"#;
        assert_eq!(
            count_result_rows("application/sparql-results+json", no).unwrap(),
            0
        );
    }

    #[test]
    fn json_counting_survives_keyword_shaped_data_and_variable_names() {
        // A literal whose whole value is `boolean` is a string *value*
        // (followed by `}`), not a member — counting must not take the
        // ASK path or error.
        let tricky = br#"{"head":{"vars":["s"]},"results":{"bindings":[
            {"s":{"type":"literal","value":"boolean"}},
            {"s":{"type":"literal","value":"bindings"}}]}}"#;
        assert_eq!(
            count_result_rows("application/sparql-results+json", tricky).unwrap(),
            2
        );
        // Variables literally named `bindings`/`boolean`: the first
        // *member* occurrence of "bindings" is the real results array
        // (head.vars holds them as plain array elements, no colon).
        let vars = br#"{"head":{"vars":["bindings","boolean"]},"results":{"bindings":[
            {"bindings":{"type":"uri","value":"http://x/a"},"boolean":{"type":"uri","value":"http://x/b"}}]}}"#;
        assert_eq!(
            count_result_rows("application/sparql-results+json", vars).unwrap(),
            1
        );
    }
}
