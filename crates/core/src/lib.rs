//! # sp2b-core — the SP²Bench benchmark
//!
//! The paper's primary contribution, assembled: the 17 benchmark queries
//! ([`queries`]), the engine configurations standing in for the paper's
//! systems under test ([`engines`]), the measurement metrics of Section
//! VI-B ([`metrics`]), the benchmark protocol ([`runner`]), the
//! multi-client mixed-workload driver of the Section VII multi-user
//! scenario ([`multiuser`]) and formatters that print the paper's tables
//! and figure series ([`report`]).
//!
//! ```no_run
//! use sp2b_core::runner::{run_benchmark, RunnerConfig};
//! use sp2b_core::report::full_report;
//!
//! let report = run_benchmark(&RunnerConfig::quick(), |line| eprintln!("{line}"));
//! println!("{}", full_report(&report));
//! ```

pub mod engines;
pub mod ext_queries;
pub mod metrics;
pub mod multiuser;
pub mod queries;
pub mod report;
pub mod runner;

pub use engines::{Engine, EngineKind, Outcome};
pub use ext_queries::ExtQuery;
pub use metrics::{measure, Measurement};
pub use multiuser::{
    run_multiuser, LatencyHistogram, MultiuserConfig, MultiuserReport, StopCondition, WorkItem,
};
pub use queries::BenchQuery;
pub use runner::{
    run_benchmark, run_mixed_workload, BenchmarkReport, MixedWorkloadConfig, MixedWorkloadReport,
    RunnerConfig, Status,
};
