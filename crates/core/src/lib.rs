//! # sp2b-core — the SP²Bench benchmark
//!
//! The paper's primary contribution, assembled: the 17 benchmark queries
//! ([`queries`]), the engine configurations standing in for the paper's
//! systems under test ([`engines`]), the measurement metrics of Section
//! VI-B ([`metrics`]), the benchmark protocol ([`runner`]), the
//! multi-client mixed-workload driver of the Section VII multi-user
//! scenario ([`multiuser`]) — with an HTTP transport ([`endpoint`]) that
//! drives a live `sp2b serve` SPARQL endpoint over real sockets, and an
//! open-loop workload model ([`workload`]) with weighted template mixes,
//! arrival processes and a coordinated-omission-safe latency recorder —
//! and formatters that print the paper's tables and figure series
//! ([`report`]).
//!
//! ```no_run
//! use sp2b_core::runner::{run_benchmark, RunnerConfig};
//! use sp2b_core::report::full_report;
//!
//! let report = run_benchmark(&RunnerConfig::quick(), |line| eprintln!("{line}"));
//! println!("{}", full_report(&report));
//! ```

pub mod endpoint;
pub mod engines;
pub mod ext_queries;
pub mod metrics;
pub mod multiuser;
pub mod queries;
pub mod report;
pub mod runner;
pub mod workload;

pub use endpoint::{Endpoint, HttpTransport};
pub use engines::{Engine, EngineKind, Outcome, ShardInfo, StoreLayout};
pub use ext_queries::ExtQuery;
pub use metrics::{measure, Measurement};
pub use multiuser::{
    run_multiuser, run_multiuser_with, ExecOutcome, InProcessTransport, LatencyHistogram,
    MultiuserConfig, MultiuserReport, StopCondition, WorkItem, WorkTransport,
};
pub use queries::BenchQuery;
pub use runner::{
    run_benchmark, run_endpoint_workload, run_endpoint_workload_open, run_mixed_workload,
    run_mixed_workload_on, BenchmarkReport, MixedWorkloadConfig, MixedWorkloadReport, RunnerConfig,
    Status,
};
pub use workload::{
    run_open_loop, run_open_loop_with, Arrival, ArrivalSchedule, MixSampler, OpenLoopReport,
    SplitMix64, TemplateReport, WeightedMix,
};
