//! The four engine configurations standing in for the paper's engines.
//!
//! | Paper engine | Configuration | Store | Optimizer |
//! |---|---|---|---|
//! | ARQ        | `mem-naive`   | hash-indexed memory | none |
//! | Sesame-M   | `mem-opt`     | hash-indexed memory | reorder + push |
//! | Sesame-DB  | `native-base` | six sorted indexes  | none |
//! | Virtuoso   | `native-opt`  | six sorted indexes  | reorder + push + substitute |
//!
//! As in the paper, in-memory engines pay their document load on every
//! query evaluation ("in-memory engines always must load the document"),
//! while native engines load once — with index build time — and are
//! measured separately (`LOADING TIME` metric).

use std::path::Path;
use std::time::Duration;

use sp2b_rdf::Graph;
use sp2b_sparql::{Error as SparqlError, OptimizerConfig, QueryEngine, QueryResult};
use sp2b_store::{
    IndexSelection, MemStore, NativeStore, ShardBackend, ShardBy, ShardedStore, SharedStore,
    TripleStore,
};

use crate::metrics::{measure, Measurement};
use crate::queries::BenchQuery;

/// The engine configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineKind {
    /// In-memory store, naive evaluation order (ARQ role).
    MemNaive,
    /// In-memory store, heuristic optimization (Sesame-Memory role).
    MemOpt,
    /// Native six-index store, naive evaluation order (Sesame-DB role).
    NativeBase,
    /// Native six-index store, full cost-based optimization (Virtuoso role).
    NativeOpt,
}

impl EngineKind {
    /// All configurations, in report order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::MemNaive,
        EngineKind::MemOpt,
        EngineKind::NativeBase,
        EngineKind::NativeOpt,
    ];

    /// Short identifier used on the CLI and in reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::MemNaive => "mem-naive",
            EngineKind::MemOpt => "mem-opt",
            EngineKind::NativeBase => "native-base",
            EngineKind::NativeOpt => "native-opt",
        }
    }

    /// The paper engine whose design point this configuration occupies.
    pub fn paper_role(self) -> &'static str {
        match self {
            EngineKind::MemNaive => "ARQ",
            EngineKind::MemOpt => "SesameM",
            EngineKind::NativeBase => "SesameDB",
            EngineKind::NativeOpt => "Virtuoso",
        }
    }

    /// Parses a label.
    pub fn from_label(s: &str) -> Option<EngineKind> {
        Self::ALL.into_iter().find(|e| e.label() == s)
    }

    /// True for the index-backed configurations.
    pub fn is_native(self) -> bool {
        matches!(self, EngineKind::NativeBase | EngineKind::NativeOpt)
    }

    /// The optimizer settings of this configuration.
    pub fn optimizer(self) -> OptimizerConfig {
        match self {
            EngineKind::MemNaive | EngineKind::NativeBase => OptimizerConfig::default(),
            EngineKind::MemOpt => OptimizerConfig::heuristic(),
            EngineKind::NativeOpt => OptimizerConfig::full(),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How an engine's store is laid out: one monolithic store (the
/// default), or N hash-partitioned shards behind a shared dictionary
/// (`sp2b … --shards N [--shard-by subject|pso]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLayout {
    /// Shard count; `1` means the classic unsharded store.
    pub shards: usize,
    /// The partition key (only meaningful when `shards > 1`).
    pub shard_by: ShardBy,
}

impl Default for StoreLayout {
    /// One unsharded store, subject partitioning if sharded later.
    fn default() -> Self {
        StoreLayout {
            shards: 1,
            shard_by: ShardBy::Subject,
        }
    }
}

impl StoreLayout {
    /// A sharded layout.
    pub fn sharded(shards: usize, shard_by: ShardBy) -> Self {
        StoreLayout { shards, shard_by }
    }

    /// True when this layout actually shards (> 1 shard).
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }
}

/// Per-shard loading facts of a sharded engine: triple counts and build
/// wall times in shard order, for the loading report.
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// The partition key.
    pub shard_by: ShardBy,
    /// Short shard backend name ("mem", "native", "disk").
    pub backend: &'static str,
    /// Triples per shard.
    pub lens: Vec<usize>,
    /// Build wall time per shard (index sort / posting inserts; segment
    /// open validation for disk shards).
    pub build_times: Vec<Duration>,
}

impl ShardInfo {
    /// Number of shards.
    pub fn count(&self) -> usize {
        self.lens.len()
    }

    /// One human line: shard count, key, per-shard triples and build
    /// times — the "per-shard load" note in runner progress and reports.
    pub fn summary(&self) -> String {
        let lens = self
            .lens
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let times = self
            .build_times
            .iter()
            .map(|t| format!("{:.1}ms", t.as_secs_f64() * 1e3))
            .collect::<Vec<_>>()
            .join("/");
        format!(
            "{} shard(s) by {} [{}]: {} triples, builds {}",
            self.count(),
            self.shard_by,
            self.backend,
            lens,
            times
        )
    }
}

/// A loaded engine: a shared store handle plus its optimizer settings.
/// The store lives behind an `Arc`, so one `Engine` can back any number
/// of concurrent [`QueryEngine`]s and multi-user client threads.
pub struct Engine {
    kind: EngineKind,
    store: SharedStore,
    /// Loading measurement (dictionary encode + index build). For
    /// in-memory engines this is also re-charged per query.
    pub loading: Measurement,
    /// Sharding facts when the store is sharded (`None` for the classic
    /// monolithic layout).
    shards: Option<ShardInfo>,
}

/// Outcome of one query execution.
#[derive(Debug)]
pub enum Outcome {
    /// Completed with this many solutions.
    Success {
        /// Solution count (ASK → 1 for `true`, 0 for `false` — consistent
        /// between the counting and materializing paths).
        count: u64,
        /// The materialized result (only kept when requested).
        result: Option<QueryResult>,
    },
    /// Hit the timeout.
    Timeout,
    /// Parser/evaluation error.
    Error(String),
}

impl Outcome {
    /// The solution count if successful.
    pub fn count(&self) -> Option<u64> {
        match self {
            Outcome::Success { count, .. } => Some(*count),
            _ => None,
        }
    }

    /// Success marker letters as in Table IV.
    pub fn status_letter(&self) -> char {
        match self {
            Outcome::Success { .. } => '+',
            Outcome::Timeout => 'T',
            Outcome::Error(_) => 'E',
        }
    }
}

impl Engine {
    /// Loads a document (as a parsed graph) into this engine
    /// configuration as one monolithic store, timing the load.
    pub fn load(kind: EngineKind, graph: &Graph) -> Engine {
        Self::load_with(kind, graph, &StoreLayout::default())
    }

    /// Like [`Engine::load`] with an explicit [`StoreLayout`]: with
    /// `shards > 1` the document loads into a [`ShardedStore`] —
    /// per-shard index builds run in parallel, and scans/point lookups
    /// parallelize/route across shards. Everything downstream
    /// ([`QueryEngine`], exchange, server, multi-user driver) is
    /// unchanged: the sharded store is just another `TripleStore` behind
    /// the same `Arc`.
    pub fn load_with(kind: EngineKind, graph: &Graph, layout: &StoreLayout) -> Engine {
        if !layout.is_sharded() {
            let (store, loading) = measure(|| -> SharedStore {
                match kind {
                    EngineKind::MemNaive | EngineKind::MemOpt => {
                        MemStore::from_graph(graph).into_shared()
                    }
                    EngineKind::NativeBase | EngineKind::NativeOpt => {
                        NativeStore::with_indexes(graph, IndexSelection::all()).into_shared()
                    }
                }
            });
            return Engine {
                kind,
                store,
                loading,
                shards: None,
            };
        }
        let backend = if kind.is_native() {
            ShardBackend::Native(IndexSelection::all())
        } else {
            ShardBackend::Mem
        };
        let ((store, info), loading) = measure(|| {
            let sharded = ShardedStore::from_graph(graph, layout.shards, layout.shard_by, backend);
            let info = ShardInfo {
                shard_by: sharded.shard_by(),
                backend: backend.label(),
                lens: sharded.shard_lens(),
                build_times: sharded.shard_build_times().to_vec(),
            };
            (sharded.into_shared(), info)
        });
        Engine {
            kind,
            store,
            loading,
            shards: Some(info),
        }
    }

    /// Opens a saved segment directory (written by `sp2b save`) as an
    /// engine with the default block-cache budget. See
    /// [`Engine::open_disk_with`].
    pub fn open_disk(kind: EngineKind, dir: &Path) -> Result<Engine, String> {
        Self::open_disk_with(kind, dir, None)
    }

    /// Opens a saved segment directory (written by `sp2b save`) as an
    /// engine, timing the open. The open reads only the segment root,
    /// the shared dictionary and the per-shard block indexes — no
    /// N-Triples parsing, no index sort; scans stream fixed-size blocks
    /// of the sorted runs through a shared LRU cache of `cache_bytes`
    /// (`None` = a fraction of the document size), so resident memory
    /// stays bounded however large the document is. Only the native
    /// configurations apply: segments hold index-ordered runs, which is
    /// the native engines' storage model.
    pub fn open_disk_with(
        kind: EngineKind,
        dir: &Path,
        cache_bytes: Option<u64>,
    ) -> Result<Engine, String> {
        let (opened, loading) = measure(|| sp2b_store::disk_store_from_dir_with(dir, cache_bytes));
        let store = opened.map_err(|e| e.to_string())?;
        let info = ShardInfo {
            shard_by: store.shard_by(),
            backend: ShardBackend::Disk.label(),
            lens: store.shard_lens(),
            build_times: store.shard_build_times().to_vec(),
        };
        Ok(Engine {
            kind,
            store: store.into_shared(),
            loading,
            shards: Some(info),
        })
    }

    /// The configuration.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Sharding facts (`None` for a monolithic store).
    pub fn shards(&self) -> Option<&ShardInfo> {
        self.shards.as_ref()
    }

    /// The underlying store.
    pub fn store(&self) -> &dyn TripleStore {
        &*self.store
    }

    /// One human line of the store's load-time statistics — what the
    /// cost-based planner runs on — or `None` for a store that collects
    /// none (the planner then falls back to its fixed-discount
    /// heuristic).
    pub fn stats_summary(&self) -> Option<String> {
        let stats = self.store.stats()?;
        let mut line = format!(
            "statistics: {} predicates, {} characteristic sets over {} triples",
            stats.predicates.len(),
            stats.characteristic_sets.len(),
            stats.triples
        );
        if let Some(cache) = self.cache_summary() {
            line.push('\n');
            line.push_str(&cache);
        }
        Some(line)
    }

    /// One human line of the out-of-core block cache's counters, or
    /// `None` for fully in-memory stores. Counters are cumulative over
    /// the engine's lifetime, so printing this after a workload shows
    /// how the bounded cache behaved under it.
    pub fn cache_summary(&self) -> Option<String> {
        Some(format!("cache: {}", self.store.cache_stats()?.summary()))
    }

    /// An owning handle to the store — what the multi-user driver hands
    /// to each client thread.
    pub fn shared_store(&self) -> SharedStore {
        self.store.clone()
    }

    /// Runs one benchmark query with a timeout; counts solutions without
    /// materializing terms. For in-memory engines the reported time
    /// includes the (already measured) loading share, mirroring the
    /// paper's measurement model.
    pub fn run(&self, query: BenchQuery, timeout: Option<Duration>) -> (Outcome, Measurement) {
        self.run_text(query.text(), timeout, false)
    }

    /// A [`QueryEngine`] facade owning a handle to this engine's store,
    /// carrying its optimizer configuration and the given timeout.
    /// Parallelism is the facade default (all available cores); use
    /// [`Engine::query_engine_with`] to pin a thread count.
    pub fn query_engine(&self, timeout: Option<Duration>) -> QueryEngine {
        self.query_engine_with(timeout, None)
    }

    /// Like [`Engine::query_engine`] with an explicit degree of
    /// parallelism (`Some(1)` forces single-threaded evaluation; `None`
    /// keeps the default of all available cores). This is what the CLI's
    /// `--threads` flag and the thread-scaling experiment drive.
    pub fn query_engine_with(
        &self,
        timeout: Option<Duration>,
        parallelism: Option<usize>,
    ) -> QueryEngine {
        let mut engine = QueryEngine::new(self.shared_store()).optimizer(self.kind.optimizer());
        if let Some(t) = timeout {
            engine = engine.timeout(t);
        }
        if let Some(p) = parallelism {
            engine = engine.parallelism(p);
        }
        engine
    }

    /// Runs arbitrary SPARQL text. With `materialize`, terms are decoded
    /// and returned; otherwise only the streaming count path runs (no term
    /// decoding at all — the Table V result-size model).
    pub fn run_text(
        &self,
        text: &str,
        timeout: Option<Duration>,
        materialize: bool,
    ) -> (Outcome, Measurement) {
        let engine = self.query_engine(timeout);
        let (outcome, mut m) = measure(|| {
            let prepared = match engine.prepare(text) {
                Ok(p) => p,
                Err(e) => return Outcome::Error(e.to_string()),
            };
            if materialize {
                match engine.execute(&prepared) {
                    Ok(r) => Outcome::Success {
                        count: r.row_count() as u64,
                        result: Some(r),
                    },
                    Err(SparqlError::Cancelled) => Outcome::Timeout,
                    Err(e) => Outcome::Error(e.to_string()),
                }
            } else {
                match engine.count(&prepared) {
                    Ok(count) => Outcome::Success {
                        count,
                        result: None,
                    },
                    Err(SparqlError::Cancelled) => Outcome::Timeout,
                    Err(e) => Outcome::Error(e.to_string()),
                }
            }
        });
        if !self.kind.is_native() {
            // In-memory engines: evaluation includes loading the document.
            m.tme += self.loading.tme;
            if let (Some(u), Some(lu)) = (m.usr, self.loading.usr) {
                m.usr = Some(u + lu);
            }
            if let (Some(s), Some(ls)) = (m.sys, self.loading.sys) {
                m.sys = Some(s + ls);
            }
        }
        (outcome, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_datagen::{generate_graph, Config};

    fn tiny_graph() -> Graph {
        generate_graph(Config::triples(4_000)).0
    }

    #[test]
    fn all_engines_answer_q1_identically() {
        let g = tiny_graph();
        let mut counts = Vec::new();
        for kind in EngineKind::ALL {
            let engine = Engine::load(kind, &g);
            let (outcome, _) = engine.run(BenchQuery::Q1, None);
            counts.push(outcome.count().unwrap_or_else(|| panic!("{kind} failed")));
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert_eq!(counts[0], 1, "Q1 returns exactly one row");
    }

    #[test]
    fn ask_queries_return_single_answer() {
        let g = tiny_graph();
        let engine = Engine::load(EngineKind::NativeOpt, &g);
        let (outcome, _) = engine.run_text(crate::queries::Q12C, None, true);
        let Outcome::Success {
            result: Some(r), ..
        } = outcome
        else {
            panic!("Q12c must succeed")
        };
        assert_eq!(r.as_bool(), Some(false), "John Q. Public must not exist");
    }

    #[test]
    fn timeout_reports_as_timeout() {
        let g = tiny_graph();
        let engine = Engine::load(EngineKind::MemNaive, &g);
        // Q4 with a zero timeout cannot finish.
        let (outcome, _) = engine.run(BenchQuery::Q4, Some(Duration::ZERO));
        assert!(matches!(outcome, Outcome::Timeout), "{outcome:?}");
        assert_eq!(outcome.status_letter(), 'T');
    }

    #[test]
    fn labels_roundtrip() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::from_label(e.label()), Some(e));
        }
        assert_eq!(EngineKind::from_label("nope"), None);
    }

    #[test]
    fn sharded_engines_answer_like_monolithic_ones() {
        let g = tiny_graph();
        for kind in [EngineKind::NativeOpt, EngineKind::MemOpt] {
            let flat = Engine::load(kind, &g);
            assert!(flat.shards().is_none());
            let layout = StoreLayout::sharded(3, ShardBy::Subject);
            let sharded = Engine::load_with(kind, &g, &layout);
            let info = sharded.shards().expect("sharded engine reports shards");
            assert_eq!(info.count(), 3);
            assert_eq!(info.lens.iter().sum::<usize>(), g.len());
            assert_eq!(info.build_times.len(), 3);
            assert!(info.summary().contains("3 shard(s) by subject"));
            for q in [BenchQuery::Q1, BenchQuery::Q5a, BenchQuery::Q9] {
                let (a, _) = flat.run(q, None);
                let (b, _) = sharded.run(q, None);
                assert_eq!(a.count(), b.count(), "{kind} {q}");
            }
        }
    }

    #[test]
    fn disk_engine_opens_saved_segments_and_agrees() {
        let g = tiny_graph();
        let dir = std::env::temp_dir().join(format!("sp2b-core-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        sp2b_store::save_graph(&dir, &g, 2, ShardBy::Subject).expect("save");
        let flat = Engine::load(EngineKind::NativeOpt, &g);
        let disk = Engine::open_disk(EngineKind::NativeOpt, &dir).expect("open");
        let info = disk.shards().expect("disk engines report shards");
        assert_eq!(info.count(), 2);
        assert!(info.summary().contains("2 shard(s) by subject [disk]"));
        for q in [BenchQuery::Q1, BenchQuery::Q5a, BenchQuery::Q9] {
            let (a, _) = flat.run(q, None);
            let (b, _) = disk.run(q, None);
            assert_eq!(a.count(), b.count(), "{q}");
        }
        // Disk engines surface their block-cache counters; in-memory
        // engines don't have any.
        assert!(flat.cache_summary().is_none());
        let cache = disk.cache_summary().expect("disk engine has a cache");
        assert!(cache.contains("misses"), "{cache}");
        let summary = disk.stats_summary().expect("stats");
        assert!(summary.contains("\ncache: "), "{summary}");
        // An explicit budget is honored verbatim.
        let tiny = Engine::open_disk_with(EngineKind::NativeOpt, &dir, Some(4096)).expect("open");
        let (_, _) = tiny.run(BenchQuery::Q1, None);
        assert!(
            tiny.cache_summary().unwrap().contains("of 4096 B budget"),
            "{}",
            tiny.cache_summary().unwrap()
        );
        let err = Engine::open_disk(EngineKind::NativeOpt, Path::new("/nonexistent/segs"))
            .err()
            .expect("missing directory must fail");
        assert!(err.contains("does not exist"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_engines_charge_loading_into_queries() {
        let g = tiny_graph();
        let mem = Engine::load(EngineKind::MemNaive, &g);
        let (_, m) = mem.run(BenchQuery::Q1, None);
        assert!(
            m.tme >= mem.loading.tme,
            "load share missing from query time"
        );
    }
}
