//! The 17 SP²Bench queries, exactly as printed in the paper's appendix.
//!
//! Two normalizations against the published text:
//! * Q12c's `rfd:type` is the obvious typo for `rdf:type` (the `rfd`
//!   prefix is declared nowhere);
//! * prefixes are pre-declared by the parser (the appendix omits the
//!   prologue), so the texts below start at `SELECT`/`ASK`.

/// Identifies one benchmark query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchQuery {
    /// Q1 — year of "Journal 1 (1940)"; 1 result, constant time on
    /// index-backed stores.
    Q1,
    /// Q2 — bushy pattern over inproceedings with OPTIONAL abstract,
    /// ORDER BY; result grows with document size.
    Q2,
    /// Q3a — FILTER with low selectivity (swrc:pages, ~92.6% of articles).
    Q3a,
    /// Q3b — FILTER with high selectivity (swrc:month, ~0.65%).
    Q3b,
    /// Q3c — FILTER that never matches (swrc:isbn on articles: probability 0).
    Q3c,
    /// Q4 — long chains + DISTINCT; quadratic in journal content.
    Q4,
    /// Q5a — implicit join on author names via FILTER.
    Q5a,
    /// Q5b — the equivalent explicit join.
    Q5b,
    /// Q6 — single closed-world negation (publications of authors without
    /// earlier publications).
    Q6,
    /// Q7 — double negation over the citation system.
    Q7,
    /// Q8 — Erdős numbers 1 and 2 via UNION.
    Q8,
    /// Q9 — incoming/outgoing predicates of persons; result size 4.
    Q9,
    /// Q10 — object-bound-only access pattern (all edges to Paul Erdős).
    Q10,
    /// Q11 — ORDER BY + LIMIT + OFFSET over rdfs:seeAlso.
    Q11,
    /// Q12a — Q5a as ASK.
    Q12a,
    /// Q12b — Q8 as ASK.
    Q12b,
    /// Q12c — ASK for a person that never exists.
    Q12c,
}

impl BenchQuery {
    /// All queries in paper order.
    pub const ALL: [BenchQuery; 17] = [
        BenchQuery::Q1,
        BenchQuery::Q2,
        BenchQuery::Q3a,
        BenchQuery::Q3b,
        BenchQuery::Q3c,
        BenchQuery::Q4,
        BenchQuery::Q5a,
        BenchQuery::Q5b,
        BenchQuery::Q6,
        BenchQuery::Q7,
        BenchQuery::Q8,
        BenchQuery::Q9,
        BenchQuery::Q10,
        BenchQuery::Q11,
        BenchQuery::Q12a,
        BenchQuery::Q12b,
        BenchQuery::Q12c,
    ];

    /// The query's display label (paper numbering).
    pub fn label(self) -> &'static str {
        match self {
            BenchQuery::Q1 => "Q1",
            BenchQuery::Q2 => "Q2",
            BenchQuery::Q3a => "Q3a",
            BenchQuery::Q3b => "Q3b",
            BenchQuery::Q3c => "Q3c",
            BenchQuery::Q4 => "Q4",
            BenchQuery::Q5a => "Q5a",
            BenchQuery::Q5b => "Q5b",
            BenchQuery::Q6 => "Q6",
            BenchQuery::Q7 => "Q7",
            BenchQuery::Q8 => "Q8",
            BenchQuery::Q9 => "Q9",
            BenchQuery::Q10 => "Q10",
            BenchQuery::Q11 => "Q11",
            BenchQuery::Q12a => "Q12a",
            BenchQuery::Q12b => "Q12b",
            BenchQuery::Q12c => "Q12c",
        }
    }

    /// Parses a label like "q3a"/"Q3a".
    pub fn from_label(s: &str) -> Option<BenchQuery> {
        let lower = s.to_ascii_lowercase();
        Self::ALL
            .into_iter()
            .find(|q| q.label().to_ascii_lowercase() == lower)
    }

    /// The SPARQL text.
    pub fn text(self) -> &'static str {
        match self {
            BenchQuery::Q1 => Q1,
            BenchQuery::Q2 => Q2,
            BenchQuery::Q3a => Q3A,
            BenchQuery::Q3b => Q3B,
            BenchQuery::Q3c => Q3C,
            BenchQuery::Q4 => Q4,
            BenchQuery::Q5a => Q5A,
            BenchQuery::Q5b => Q5B,
            BenchQuery::Q6 => Q6,
            BenchQuery::Q7 => Q7,
            BenchQuery::Q8 => Q8,
            BenchQuery::Q9 => Q9,
            BenchQuery::Q10 => Q10,
            BenchQuery::Q11 => Q11,
            BenchQuery::Q12a => Q12A,
            BenchQuery::Q12b => Q12B,
            BenchQuery::Q12c => Q12C,
        }
    }

    /// True for the ASK queries.
    pub fn is_ask(self) -> bool {
        matches!(self, BenchQuery::Q12a | BenchQuery::Q12b | BenchQuery::Q12c)
    }
}

impl std::fmt::Display for BenchQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Q1: *Return the year of publication of "Journal 1 (1940)".*
pub const Q1: &str = r#"
SELECT ?yr
WHERE {
  ?journal rdf:type bench:Journal .
  ?journal dc:title "Journal 1 (1940)"^^xsd:string .
  ?journal dcterms:issued ?yr
}"#;

/// Q2: *Extract all inproceedings with their standard properties,
/// optionally the abstract.*
pub const Q2: &str = r#"
SELECT ?inproc ?author ?booktitle ?title
       ?proc ?ee ?page ?url ?yr ?abstract
WHERE {
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?author .
  ?inproc bench:booktitle ?booktitle .
  ?inproc dc:title ?title .
  ?inproc dcterms:partOf ?proc .
  ?inproc rdfs:seeAlso ?ee .
  ?inproc swrc:pages ?page .
  ?inproc foaf:homepage ?url .
  ?inproc dcterms:issued ?yr
  OPTIONAL { ?inproc bench:abstract ?abstract }
} ORDER BY ?yr"#;

/// Q3a: *Select all articles with property swrc:pages.*
pub const Q3A: &str = r#"
SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article ?property ?value
  FILTER (?property = swrc:pages)
}"#;

/// Q3b: like Q3a with swrc:month.
pub const Q3B: &str = r#"
SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article ?property ?value
  FILTER (?property = swrc:month)
}"#;

/// Q3c: like Q3a with swrc:isbn (matches nothing).
pub const Q3C: &str = r#"
SELECT ?article
WHERE {
  ?article rdf:type bench:Article .
  ?article ?property ?value
  FILTER (?property = swrc:isbn)
}"#;

/// Q4: *Select all distinct pairs of article author names for authors that
/// have published in the same journal.*
pub const Q4: &str = r#"
SELECT DISTINCT ?name1 ?name2
WHERE {
  ?article1 rdf:type bench:Article .
  ?article2 rdf:type bench:Article .
  ?article1 dc:creator ?author1 .
  ?author1 foaf:name ?name1 .
  ?article2 dc:creator ?author2 .
  ?author2 foaf:name ?name2 .
  ?article1 swrc:journal ?journal .
  ?article2 swrc:journal ?journal
  FILTER (?name1 < ?name2)
}"#;

/// Q5a: *Names of persons occurring as author of at least one
/// inproceeding and one article* — implicit join via FILTER.
pub const Q5A: &str = r#"
SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person2 .
  ?person foaf:name ?name .
  ?person2 foaf:name ?name2
  FILTER (?name = ?name2)
}"#;

/// Q5b: the explicit-join variant of Q5a.
pub const Q5B: &str = r#"
SELECT DISTINCT ?person ?name
WHERE {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person .
  ?person foaf:name ?name
}"#;

/// Q6: *Publications, per year, of authors that have not published in
/// years before* — closed-world negation.
pub const Q6: &str = r#"
SELECT ?yr ?name ?doc
WHERE {
  ?class rdfs:subClassOf foaf:Document .
  ?doc rdf:type ?class .
  ?doc dcterms:issued ?yr .
  ?doc dc:creator ?author .
  ?author foaf:name ?name
  OPTIONAL {
    ?class2 rdfs:subClassOf foaf:Document .
    ?doc2 rdf:type ?class2 .
    ?doc2 dcterms:issued ?yr2 .
    ?doc2 dc:creator ?author2
    FILTER (?author = ?author2 && ?yr2 < ?yr)
  }
  FILTER (!bound(?author2))
}"#;

/// Q7: *Titles of papers cited at least once, but not by any paper that
/// has not been cited itself* — double negation.
pub const Q7: &str = r#"
SELECT DISTINCT ?title
WHERE {
  ?class rdfs:subClassOf foaf:Document .
  ?doc rdf:type ?class .
  ?doc dc:title ?title .
  ?bag2 ?member2 ?doc .
  ?doc2 dcterms:references ?bag2
  OPTIONAL {
    ?class3 rdfs:subClassOf foaf:Document .
    ?doc3 rdf:type ?class3 .
    ?doc3 dcterms:references ?bag3 .
    ?bag3 ?member3 ?doc
    OPTIONAL {
      ?class4 rdfs:subClassOf foaf:Document .
      ?doc4 rdf:type ?class4 .
      ?doc4 dcterms:references ?bag4 .
      ?bag4 ?member4 ?doc3
    }
    FILTER (!bound(?doc4))
  }
  FILTER (!bound(?doc3))
}"#;

/// Q8: *Authors with Erdős number 1 or 2.*
pub const Q8: &str = r#"
SELECT DISTINCT ?name
WHERE {
  ?erdoes rdf:type foaf:Person .
  ?erdoes foaf:name "Paul Erdoes"^^xsd:string .
  {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?doc2 dc:creator ?author .
    ?doc2 dc:creator ?author2 .
    ?author2 foaf:name ?name
    FILTER (?author != ?erdoes &&
            ?doc2 != ?doc &&
            ?author2 != ?erdoes &&
            ?author2 != ?author)
  } UNION {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?author foaf:name ?name
    FILTER (?author != ?erdoes)
  }
}"#;

/// Q9: *Incoming and outgoing properties of persons* — schema exploration,
/// result size exactly 4.
pub const Q9: &str = r#"
SELECT DISTINCT ?predicate
WHERE {
  {
    ?person rdf:type foaf:Person .
    ?subject ?predicate ?person
  } UNION {
    ?person rdf:type foaf:Person .
    ?person ?predicate ?object
  }
}"#;

/// Q10: *All subjects standing in any relation to Paul Erdős* —
/// object-bound access pattern.
pub const Q10: &str = r#"
SELECT ?subj ?pred
WHERE { ?subj ?pred person:Paul_Erdoes }"#;

/// Q11: *10 electronic edition URLs starting from the 51st, in
/// lexicographical order.*
pub const Q11: &str = r#"
SELECT ?ee
WHERE { ?publication rdfs:seeAlso ?ee }
ORDER BY ?ee LIMIT 10 OFFSET 50"#;

/// Q12a: Q5a as ASK.
pub const Q12A: &str = r#"
ASK {
  ?article rdf:type bench:Article .
  ?article dc:creator ?person .
  ?inproc rdf:type bench:Inproceedings .
  ?inproc dc:creator ?person2 .
  ?person foaf:name ?name .
  ?person2 foaf:name ?name2
  FILTER (?name = ?name2)
}"#;

/// Q12b: Q8 as ASK.
pub const Q12B: &str = r#"
ASK {
  ?erdoes rdf:type foaf:Person .
  ?erdoes foaf:name "Paul Erdoes"^^xsd:string .
  {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?doc2 dc:creator ?author .
    ?doc2 dc:creator ?author2 .
    ?author2 foaf:name ?name
    FILTER (?author != ?erdoes &&
            ?doc2 != ?doc &&
            ?author2 != ?erdoes &&
            ?author2 != ?author)
  } UNION {
    ?doc dc:creator ?erdoes .
    ?doc dc:creator ?author .
    ?author foaf:name ?name
    FILTER (?author != ?erdoes)
  }
}"#;

/// Q12c: ASK for "John Q. Public" (absent by construction; `rfd:type` in
/// the paper corrected to `rdf:type`).
pub const Q12C: &str = r#"
ASK { person:John_Q_Public rdf:type foaf:Person }"#;

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_sparql::parse;

    #[test]
    fn all_queries_parse() {
        for q in BenchQuery::ALL {
            parse(q.text()).unwrap_or_else(|e| panic!("{q} fails to parse: {e}"));
        }
    }

    #[test]
    fn ask_flags_match_forms() {
        for q in BenchQuery::ALL {
            let parsed = parse(q.text()).unwrap();
            assert_eq!(parsed.is_ask(), q.is_ask(), "{q}");
        }
    }

    #[test]
    fn labels_roundtrip() {
        for q in BenchQuery::ALL {
            assert_eq!(BenchQuery::from_label(q.label()), Some(q));
            assert_eq!(BenchQuery::from_label(&q.label().to_lowercase()), Some(q));
        }
        assert_eq!(BenchQuery::from_label("q99"), None);
    }

    #[test]
    fn q3_variants_differ_only_in_property() {
        assert_eq!(Q3A.replace("swrc:pages", "swrc:month"), Q3B.to_owned());
        assert_eq!(Q3A.replace("swrc:pages", "swrc:isbn"), Q3C.to_owned());
    }

    #[test]
    fn q12_variants_mirror_select_counterparts() {
        // Q12a/Q12b share the graph pattern of Q5a/Q8 (modulo form).
        let body_of = |s: &str| s.split_once('{').unwrap().1.to_owned();
        assert_eq!(body_of(Q12A), body_of(Q5A));
        assert_eq!(body_of(Q12B), body_of(Q8));
    }
}
