//! Extension queries — the aggregate workload the paper's conclusion
//! anticipates: "the detailed knowledge of the document class counts and
//! distributions (cf. Section III) facilitates the design of challenging
//! aggregate queries with fixed characteristics."
//!
//! Each query aggregates over a distribution Section III pins down, so
//! its result shape is predictable: A1 mirrors Table VIII's class counts,
//! A2 the logistic growth curves, A3 `µ_auth` (authors per paper), A4 the
//! power-law citation in-degrees, A5 the distinct-author ratio.

/// Identifies one extension (aggregate) query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtQuery {
    /// A1 — documents per class (Table VIII's count columns as a query).
    A1,
    /// A2 — articles per year (the `f_article` logistic curve).
    A2,
    /// A3 — authors per inproceedings paper, per paper (input to `d_auth`).
    A3,
    /// A4 — incoming citations per document (power-law in-degrees).
    A4,
    /// A5 — distinct authors vs. total author attributes.
    A5,
}

impl ExtQuery {
    /// All extension queries.
    pub const ALL: [ExtQuery; 5] = [
        ExtQuery::A1,
        ExtQuery::A2,
        ExtQuery::A3,
        ExtQuery::A4,
        ExtQuery::A5,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ExtQuery::A1 => "A1",
            ExtQuery::A2 => "A2",
            ExtQuery::A3 => "A3",
            ExtQuery::A4 => "A4",
            ExtQuery::A5 => "A5",
        }
    }

    /// The SPARQL text (aggregation-extension syntax).
    pub fn text(self) -> &'static str {
        match self {
            ExtQuery::A1 => A1,
            ExtQuery::A2 => A2,
            ExtQuery::A3 => A3,
            ExtQuery::A4 => A4,
            ExtQuery::A5 => A5,
        }
    }
}

impl std::fmt::Display for ExtQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A1: documents per class, largest classes first.
pub const A1: &str = r#"
SELECT ?class (COUNT(*) AS ?instances)
WHERE { ?doc rdf:type ?class . ?class rdfs:subClassOf foaf:Document }
GROUP BY ?class
ORDER BY DESC(?instances)"#;

/// A2: articles per year — regenerates the `f_article` growth curve.
pub const A2: &str = r#"
SELECT ?yr (COUNT(*) AS ?articles)
WHERE { ?doc rdf:type bench:Article . ?doc dcterms:issued ?yr }
GROUP BY ?yr
ORDER BY ?yr"#;

/// A3: authors per inproceedings paper (the `d_auth` distribution's raw
/// material), most-authored papers first.
pub const A3: &str = r#"
SELECT ?doc (COUNT(?author) AS ?authors)
WHERE { ?doc rdf:type bench:Inproceedings . ?doc dc:creator ?author }
GROUP BY ?doc
ORDER BY DESC(?authors)
LIMIT 20"#;

/// A4: incoming citations per document — the power-law in-degrees of
/// Section III-D, most-cited first.
pub const A4: &str = r#"
SELECT ?cited (COUNT(?bag) AS ?incoming)
WHERE { ?bag ?member ?cited . ?doc dcterms:references ?bag }
GROUP BY ?cited
ORDER BY DESC(?incoming)
LIMIT 20"#;

/// A5: total author attributes vs. distinct persons (the `f_dauth` ratio).
pub const A5: &str = r#"
SELECT (COUNT(?author) AS ?total) (COUNT(DISTINCT ?author) AS ?distinct)
WHERE { ?doc dc:creator ?author }"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{Engine, EngineKind, Outcome};
    use sp2b_datagen::{generate_graph, Config};
    use sp2b_sparql::QueryResult;

    fn run(q: ExtQuery) -> (Vec<String>, Vec<Vec<Option<sp2b_rdf::Term>>>) {
        let (graph, _) = generate_graph(Config::triples(20_000));
        let engine = Engine::load(EngineKind::NativeOpt, &graph);
        let (outcome, _) = engine.run_text(q.text(), None, true);
        match outcome {
            Outcome::Success {
                result: Some(QueryResult::Solutions { variables, rows }),
                ..
            } => (variables, rows),
            other => panic!("{q} failed: {other:?}"),
        }
    }

    fn int(t: &Option<sp2b_rdf::Term>) -> i64 {
        match t {
            Some(sp2b_rdf::Term::Literal(l)) => l.as_integer().expect("integer"),
            other => panic!("expected integer, got {other:?}"),
        }
    }

    #[test]
    fn all_extension_queries_parse() {
        for q in ExtQuery::ALL {
            sp2b_sparql::parse(q.text()).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn a1_matches_generator_statistics() {
        let (graph, stats) = generate_graph(Config::triples(20_000));
        let engine = Engine::load(EngineKind::NativeOpt, &graph);
        let (outcome, _) = engine.run_text(ExtQuery::A1.text(), None, true);
        let Outcome::Success {
            result: Some(QueryResult::Solutions { rows, .. }),
            ..
        } = outcome
        else {
            panic!("A1 failed")
        };
        // The article row must carry exactly the stats count.
        let article_row = rows
            .iter()
            .find(|r| r[0].as_ref().unwrap().to_string().contains("Article"))
            .expect("articles exist");
        assert_eq!(
            int(&article_row[1]) as u64,
            stats.count(sp2b_datagen::DocClass::Article)
        );
        // Ordered by descending instance count.
        let counts: Vec<i64> = rows.iter().map(|r| int(&r[1])).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(counts, sorted);
    }

    #[test]
    fn a2_counts_grow_over_time() {
        let (_, rows) = run(ExtQuery::A2);
        assert!(rows.len() > 5, "several simulated years");
        // Logistic growth: the last year's count exceeds the first's.
        let first = int(&rows.first().unwrap()[1]);
        let last = int(&rows.last().unwrap()[1]);
        assert!(last > first, "growth curve: {first} → {last}");
    }

    #[test]
    fn a3_caps_at_limit_and_descends() {
        let (_, rows) = run(ExtQuery::A3);
        assert!(rows.len() <= 20);
        let counts: Vec<i64> = rows.iter().map(|r| int(&r[1])).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
        assert!(counts[0] >= 1);
    }

    #[test]
    fn a4_shows_power_law_head() {
        let (_, rows) = run(ExtQuery::A4);
        if rows.len() >= 5 {
            let top = int(&rows[0][1]);
            let fifth = int(&rows[4][1]);
            assert!(top >= fifth, "descending in-degrees");
        }
    }

    #[test]
    fn a5_distinct_at_most_total() {
        let (vars, rows) = run(ExtQuery::A5);
        assert_eq!(vars, ["total", "distinct"]);
        assert_eq!(rows.len(), 1);
        let total = int(&rows[0][0]);
        let distinct = int(&rows[0][1]);
        assert!(distinct <= total);
        assert!(distinct > 0);
    }

    #[test]
    fn a5_matches_generator_statistics() {
        let (graph, stats) = generate_graph(Config::triples(20_000));
        let engine = Engine::load(EngineKind::NativeOpt, &graph);
        let (outcome, _) = engine.run_text(ExtQuery::A5.text(), None, true);
        let Outcome::Success {
            result: Some(QueryResult::Solutions { rows, .. }),
            ..
        } = outcome
        else {
            panic!("A5 failed")
        };
        assert_eq!(int(&rows[0][0]) as u64, stats.total_authors);
        assert_eq!(int(&rows[0][1]) as u64, stats.distinct_authors);
    }
}
