//! The benchmark runner: Section VI-B's protocol.
//!
//! For every document scale the runner generates the document once
//! (deterministic, so results are reproducible), loads it into each
//! engine configuration (timed — the LOADING TIME metric), executes every
//! selected query `runs` times under a timeout, and records status,
//! wall/CPU time, memory watermark and result count. The report type
//! feeds the Table IV/V/VI/VII and Figure 5–8 formatters in
//! [`crate::report`].

use std::time::Duration;

use sp2b_datagen::{generate_graph, Config};
use sp2b_rdf::Graph;

use crate::endpoint::{Endpoint, HttpTransport};
use crate::engines::{Engine, EngineKind, Outcome, ShardInfo, StoreLayout};
use crate::metrics::{Measurement, PENALTY_SECONDS};
use crate::multiuser::{
    run_multiuser, run_multiuser_with, MultiuserConfig, MultiuserReport, StopCondition,
};
use crate::queries::BenchQuery;
use crate::workload::{run_open_loop, run_open_loop_with, OpenLoopReport};

/// Execution status of one query cell, as lettered in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// `+` — success.
    Success,
    /// `T` — timeout.
    Timeout,
    /// `M` — memory exhaustion (reported when the store/load path fails
    /// to allocate; rare under cooperative evaluation).
    Memory,
    /// `E` — error.
    Error,
}

impl Status {
    /// The Table IV letter.
    pub fn letter(self) -> char {
        match self {
            Status::Success => '+',
            Status::Timeout => 'T',
            Status::Memory => 'M',
            Status::Error => 'E',
        }
    }
}

/// Averaged result of one (scale, engine, query) cell.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Document scale in triples.
    pub scale: u64,
    /// Engine configuration.
    pub engine: EngineKind,
    /// The query.
    pub query: BenchQuery,
    /// Worst status across runs.
    pub status: Status,
    /// Mean measurement over successful runs (or over all runs if none
    /// succeeded — timeout cells carry the timeout duration).
    pub measurement: Measurement,
    /// Result cardinality (from the first successful run).
    pub count: Option<u64>,
}

impl QueryRecord {
    /// Time in seconds used for the aggregate means (penalty on failure).
    pub fn penalized_seconds(&self) -> f64 {
        match self.status {
            Status::Success => self.measurement.tme.as_secs_f64(),
            _ => PENALTY_SECONDS,
        }
    }
}

/// Loading record per (scale, engine).
#[derive(Debug, Clone)]
pub struct LoadRecord {
    /// Document scale in triples.
    pub scale: u64,
    /// Engine configuration.
    pub engine: EngineKind,
    /// The load measurement (dictionary + index build).
    pub measurement: Measurement,
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Document scales (triples). The paper uses 10k/50k/250k/1M/5M/25M.
    pub scales: Vec<u64>,
    /// Engines to benchmark.
    pub engines: Vec<EngineKind>,
    /// Queries to run.
    pub queries: Vec<BenchQuery>,
    /// Per-query timeout (the paper: 30 min).
    pub timeout: Duration,
    /// Runs per cell (the paper: 3).
    pub runs: usize,
    /// Generator seed.
    pub seed: u64,
}

impl RunnerConfig {
    /// The paper's protocol at reduced scale: 10k/50k/250k/1M documents,
    /// all engines, all 17 queries, 3 runs. The timeout defaults to 30 s
    /// (the paper's 30 min divided by the hardware generation gap; set
    /// `timeout` explicitly to reproduce the original).
    pub fn paper_defaults() -> Self {
        RunnerConfig {
            scales: vec![10_000, 50_000, 250_000, 1_000_000],
            engines: EngineKind::ALL.to_vec(),
            queries: BenchQuery::ALL.to_vec(),
            timeout: Duration::from_secs(30),
            runs: 3,
            seed: sp2b_datagen::Rng::DEFAULT_SEED,
        }
    }

    /// A seconds-scale smoke configuration for tests and demos.
    pub fn quick() -> Self {
        RunnerConfig {
            scales: vec![5_000, 20_000],
            engines: EngineKind::ALL.to_vec(),
            queries: BenchQuery::ALL.to_vec(),
            timeout: Duration::from_secs(5),
            runs: 1,
            seed: sp2b_datagen::Rng::DEFAULT_SEED,
        }
    }
}

/// A completed benchmark: all cells plus loading times.
#[derive(Debug, Clone, Default)]
pub struct BenchmarkReport {
    /// Scales actually run.
    pub scales: Vec<u64>,
    /// Engines actually run.
    pub engines: Vec<EngineKind>,
    /// Queries actually run.
    pub queries: Vec<BenchQuery>,
    /// Per-cell records.
    pub records: Vec<QueryRecord>,
    /// Per-(scale, engine) loading measurements.
    pub loads: Vec<LoadRecord>,
}

impl BenchmarkReport {
    /// The record for a cell.
    pub fn cell(&self, scale: u64, engine: EngineKind, query: BenchQuery) -> Option<&QueryRecord> {
        self.records
            .iter()
            .find(|r| r.scale == scale && r.engine == engine && r.query == query)
    }

    /// The best-known result count for (scale, query): prefers native-opt.
    pub fn result_count(&self, scale: u64, query: BenchQuery) -> Option<u64> {
        let mut best: Option<u64> = None;
        for r in &self.records {
            if r.scale == scale && r.query == query {
                if let Some(c) = r.count {
                    if r.engine == EngineKind::NativeOpt {
                        return Some(c);
                    }
                    best = Some(c);
                }
            }
        }
        best
    }
}

/// Mixed-workload (multi-user) benchmark mode: one generated document,
/// one engine configuration, N concurrent client threads sharing the
/// loaded store — the paper's Section VII multi-user scenario. This is
/// the protocol behind `sp2b multiuser`.
#[derive(Debug, Clone)]
pub struct MixedWorkloadConfig {
    /// Document scale in triples.
    pub scale: u64,
    /// Engine configuration to load the document into.
    pub engine: EngineKind,
    /// Store layout: monolithic (default) or hash-sharded.
    pub layout: StoreLayout,
    /// Generator seed.
    pub seed: u64,
    /// Client count, per-query parallelism, stop condition, timeout, mix.
    pub multiuser: MultiuserConfig,
}

impl MixedWorkloadConfig {
    /// `clients` clients against a `scale`-triple document on the
    /// optimized native engine, default (unsharded) layout, mix and
    /// timeout.
    pub fn new(scale: u64, clients: usize, stop: StopCondition) -> Self {
        MixedWorkloadConfig {
            scale,
            engine: EngineKind::NativeOpt,
            layout: StoreLayout::default(),
            seed: sp2b_datagen::Rng::DEFAULT_SEED,
            multiuser: MultiuserConfig::new(clients, stop),
        }
    }
}

/// A completed mixed-workload run: the load measurement plus the
/// per-client driver report (formatted by
/// [`crate::report::mixed_workload_report`]).
#[derive(Debug, Clone)]
pub struct MixedWorkloadReport {
    /// Document scale in triples.
    pub scale: u64,
    /// Engine configuration driven.
    pub engine: EngineKind,
    /// Loading measurement of the shared store.
    pub load: Measurement,
    /// Sharding facts when the store was sharded (shard count, per-shard
    /// triple counts and build times).
    pub shards: Option<ShardInfo>,
    /// The multi-user driver's outcome. In an open-loop run this carries
    /// only the wall clock (per-client reports don't exist there — any
    /// worker runs any request); the real outcome is in `open`.
    pub multiuser: MultiuserReport,
    /// The open-loop driver's outcome when the configured arrival
    /// process was open-loop; `None` for closed-loop runs.
    pub open: Option<OpenLoopReport>,
}

/// Runs the mixed workload: generate the document once, load it into the
/// configured engine, then drive the concurrent clients against the
/// shared store. `progress` receives one line per phase.
pub fn run_mixed_workload(
    cfg: &MixedWorkloadConfig,
    mut progress: impl FnMut(&str),
) -> MixedWorkloadReport {
    progress(&format!("generating {} triples…", cfg.scale));
    let (graph, _) = generate_graph(Config::triples(cfg.scale).with_seed(cfg.seed));
    let engine = Engine::load_with(cfg.engine, &graph, &cfg.layout);
    progress(&format!(
        "loaded {} triples into {} ({})",
        cfg.scale,
        cfg.engine,
        engine.loading.summary()
    ));
    if let Some(info) = engine.shards() {
        progress(&info.summary());
    }
    if let Some(stats) = engine.stats_summary() {
        progress(&stats);
    }
    let mut report = run_mixed_workload_on(&engine, &cfg.multiuser, progress);
    report.scale = cfg.scale;
    report
}

/// Drives the concurrent clients against an engine that is already
/// loaded — the shared tail of [`run_mixed_workload`], and the whole
/// protocol for stores that need no generate/load phase (a segment
/// directory opened with [`Engine::open_disk`]). The reported scale is
/// the store's triple count.
pub fn run_mixed_workload_on(
    engine: &Engine,
    cfg: &MultiuserConfig,
    mut progress: impl FnMut(&str),
) -> MixedWorkloadReport {
    if cfg.arrival.is_open() {
        progress(&format!(
            "driving {} worker(s), arrival {}…",
            cfg.clients, cfg.arrival
        ));
        let open = run_open_loop(engine.shared_store(), cfg);
        progress(&format!(
            "{} of {} scheduled queries completed in {:.2?} ({:.1} q/s, intended {:.1} q/s)",
            open.completed,
            open.issued,
            open.wall,
            open.completed_rate(),
            open.intended_rate()
        ));
        return MixedWorkloadReport {
            scale: engine.store().len() as u64,
            engine: engine.kind(),
            load: engine.loading,
            shards: engine.shards().cloned(),
            multiuser: MultiuserReport {
                clients: Vec::new(),
                wall: open.wall,
            },
            open: Some(open),
        };
    }
    progress(&format!(
        "driving {} client(s), per-query parallelism {}…",
        cfg.clients, cfg.parallelism
    ));
    let multiuser = run_multiuser(engine.shared_store(), cfg);
    progress(&format!(
        "{} queries completed in {:.2?} ({:.1} q/s)",
        multiuser.total_completed(),
        multiuser.wall,
        multiuser.throughput()
    ));
    MixedWorkloadReport {
        scale: engine.store().len() as u64,
        engine: engine.kind(),
        load: engine.loading,
        shards: engine.shards().cloned(),
        multiuser,
        open: None,
    }
}

/// Drives a live SPARQL endpoint with the multi-user mixed workload over
/// HTTP — the protocol behind `sp2b multiuser --endpoint`. Unlike
/// [`run_mixed_workload`] nothing is generated or loaded here: the
/// server owns the store, and every measured latency includes the full
/// network path (connect, request framing, result-set transfer).
pub fn run_endpoint_workload(
    endpoint: &Endpoint,
    cfg: &MultiuserConfig,
    mut progress: impl FnMut(&str),
) -> MultiuserReport {
    progress(&format!(
        "driving {} client(s) against {}…",
        cfg.clients,
        endpoint.url()
    ));
    let transport = HttpTransport::new(endpoint.clone());
    let report = run_multiuser_with(&transport, cfg);
    progress(&format!(
        "{} queries completed in {:.2?} ({:.1} q/s)",
        report.total_completed(),
        report.wall,
        report.throughput()
    ));
    report
}

/// The open-loop counterpart of [`run_endpoint_workload`]: the schedule
/// thread stamps intended send times and HTTP workers pull from the
/// bounded queue, so the measured percentiles include queueing at the
/// endpoint — `sp2b multiuser --endpoint … --arrival poisson:…`.
pub fn run_endpoint_workload_open(
    endpoint: &Endpoint,
    cfg: &MultiuserConfig,
    mut progress: impl FnMut(&str),
) -> OpenLoopReport {
    progress(&format!(
        "driving {} worker(s) against {}, arrival {}…",
        cfg.clients,
        endpoint.url(),
        cfg.arrival
    ));
    let transport = HttpTransport::new(endpoint.clone());
    let report = run_open_loop_with(&transport, cfg);
    progress(&format!(
        "{} of {} scheduled queries completed in {:.2?} ({:.1} q/s, intended {:.1} q/s)",
        report.completed,
        report.issued,
        report.wall,
        report.completed_rate(),
        report.intended_rate()
    ));
    report
}

/// Runs the benchmark. `progress` receives one line per completed cell.
pub fn run_benchmark(cfg: &RunnerConfig, mut progress: impl FnMut(&str)) -> BenchmarkReport {
    let mut report = BenchmarkReport {
        scales: cfg.scales.clone(),
        engines: cfg.engines.clone(),
        queries: cfg.queries.clone(),
        ..Default::default()
    };

    for &scale in &cfg.scales {
        progress(&format!("generating {scale} triples…"));
        let (graph, _) = generate_graph(Config::triples(scale).with_seed(cfg.seed));
        for &kind in &cfg.engines {
            run_engine(cfg, &graph, scale, kind, &mut report, &mut progress);
        }
    }
    report
}

fn run_engine(
    cfg: &RunnerConfig,
    graph: &Graph,
    scale: u64,
    kind: EngineKind,
    report: &mut BenchmarkReport,
    progress: &mut impl FnMut(&str),
) {
    let engine = Engine::load(kind, graph);
    report.loads.push(LoadRecord {
        scale,
        engine: kind,
        measurement: engine.loading,
    });
    progress(&format!(
        "loaded {scale} triples into {kind} ({})",
        engine.loading.summary()
    ));

    for &query in &cfg.queries {
        let mut status = Status::Success;
        let mut count = None;
        let mut times: Vec<Measurement> = Vec::new();
        for _run in 0..cfg.runs.max(1) {
            let (outcome, m) = engine.run(query, Some(cfg.timeout));
            match outcome {
                Outcome::Success { count: c, .. } => {
                    count.get_or_insert(c);
                    times.push(m);
                }
                Outcome::Timeout => {
                    status = Status::Timeout;
                    times.push(m);
                    break; // further runs would time out identically
                }
                Outcome::Error(_) => {
                    status = Status::Error;
                    times.push(m);
                    break;
                }
            }
        }
        let measurement = average(&times);
        progress(&format!(
            "{scale:>9} {kind:<12} {query:<5} {} {}",
            status.letter(),
            measurement.summary()
        ));
        report.records.push(QueryRecord {
            scale,
            engine: kind,
            query,
            status,
            measurement,
            count,
        });
    }
}

fn average(ms: &[Measurement]) -> Measurement {
    if ms.is_empty() {
        return Measurement::default();
    }
    let n = ms.len() as u32;
    let tme = ms.iter().map(|m| m.tme).sum::<Duration>() / n;
    let sum_opt = |f: fn(&Measurement) -> Option<Duration>| -> Option<Duration> {
        let vals: Vec<Duration> = ms.iter().filter_map(f).collect();
        if vals.len() == ms.len() {
            Some(vals.iter().sum::<Duration>() / n)
        } else {
            None
        }
    };
    Measurement {
        tme,
        usr: sum_opt(|m| m.usr),
        sys: sum_opt(|m| m.sys),
        rmem_kib: ms.iter().filter_map(|m| m.rmem_kib).max(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> RunnerConfig {
        RunnerConfig {
            scales: vec![3_000],
            engines: vec![EngineKind::MemOpt, EngineKind::NativeOpt],
            queries: vec![
                BenchQuery::Q1,
                BenchQuery::Q3c,
                BenchQuery::Q9,
                BenchQuery::Q12c,
            ],
            timeout: Duration::from_secs(10),
            runs: 2,
            seed: sp2b_datagen::Rng::DEFAULT_SEED,
        }
    }

    #[test]
    fn runner_produces_full_grid() {
        let cfg = tiny_config();
        let report = run_benchmark(&cfg, |_| {});
        assert_eq!(report.records.len(), 2 * 4);
        assert_eq!(report.loads.len(), 2);
        for r in &report.records {
            assert_eq!(r.status, Status::Success, "{:?}", r);
        }
    }

    #[test]
    fn invariant_counts_hold() {
        let report = run_benchmark(&tiny_config(), |_| {});
        assert_eq!(report.result_count(3_000, BenchQuery::Q1), Some(1));
        assert_eq!(report.result_count(3_000, BenchQuery::Q3c), Some(0));
        assert_eq!(report.result_count(3_000, BenchQuery::Q9), Some(4));
        // ASK counts one solution (the boolean).
        assert_eq!(report.result_count(3_000, BenchQuery::Q12c), Some(0));
    }

    #[test]
    fn mixed_workload_mode_reports_clients() {
        let mut cfg = MixedWorkloadConfig::new(2_000, 2, StopCondition::Rounds(1));
        cfg.multiuser.mix = vec![
            crate::multiuser::WorkItem::bench(BenchQuery::Q1),
            crate::multiuser::WorkItem::bench(BenchQuery::Q3c),
        ];
        let mut lines = Vec::new();
        let report = run_mixed_workload(&cfg, |l| lines.push(l.to_owned()));
        assert_eq!(report.multiuser.clients.len(), 2);
        assert_eq!(
            report.multiuser.total_completed(),
            4,
            "1 round × 2 queries × 2 clients"
        );
        assert!(report.multiuser.clients.iter().all(|c| c.errors == 0));
        assert!(lines.iter().any(|l| l.contains("driving 2 client(s)")));
    }

    #[test]
    fn penalized_seconds_applies_penalty() {
        let rec = QueryRecord {
            scale: 1,
            engine: EngineKind::MemNaive,
            query: BenchQuery::Q1,
            status: Status::Timeout,
            measurement: Measurement::default(),
            count: None,
        };
        assert_eq!(rec.penalized_seconds(), PENALTY_SECONDS);
    }
}
