//! The multi-client mixed-workload driver — the paper's Section VII
//! "multi-user scenario": many clients issuing a mix of cheap and
//! expensive queries against **one shared store**, which real-world
//! query-log studies (Bonifati et al.) show is what production engines
//! actually face.
//!
//! [`run_multiuser`] spawns `clients` threads, each holding its own
//! [`QueryEngine`] over a clone of the same [`SharedStore`] handle (the
//! owned-store engine makes this an `Arc` bump per client). Every client
//! prepares its query mix once, then cycles through it — each client
//! starting at a different rotation offset so the store sees genuinely
//! mixed traffic — recording per-query latency into a log-bucketed
//! [`LatencyHistogram`] and the observed result cardinalities, until the
//! configured [`StopCondition`] is met. The driver reports per-client
//! p50/p95/p99 latency and aggregate throughput
//! ([`MultiuserReport::throughput`]).
//!
//! *How* a client reaches the store is abstracted behind
//! [`WorkTransport`]: [`run_multiuser`] wires the in-process transport
//! (direct [`QueryEngine`] calls over the shared store), while
//! [`run_multiuser_with`] accepts any transport — in particular
//! [`crate::endpoint::HttpTransport`], which drives a live
//! `sp2b serve` endpoint over real sockets so the measured path includes
//! connection handling, HTTP framing and result-set transfer.
//!
//! Result counts are tracked per query label and checked for stability
//! across executions ([`ClientReport::inconsistent`]): a read-only store
//! must answer every client identically every time, no matter how many
//! other clients are hammering it — the concurrency acceptance test pins
//! this against single-client runs.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sp2b_sparql::{Cancellation, Error as SparqlError, QueryEngine, QueryOptions};
use sp2b_store::SharedStore;

use crate::ext_queries::ExtQuery;
use crate::queries::BenchQuery;
use crate::workload::{template_latency_series, Arrival, MixSampler};

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

// The log-bucketed histogram was born here; it now lives in `sp2b-obs`
// (where the server's shared-writer sibling reuses its bucket math) and
// is re-exported so `core::multiuser::LatencyHistogram` keeps resolving.
pub use sp2b_obs::LatencyHistogram;

// ---------------------------------------------------------------------------
// Workload configuration
// ---------------------------------------------------------------------------

/// One entry of a client's query mix.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Display label (Q1…Q12c, A1…A5, or caller-chosen).
    pub label: String,
    /// SPARQL text.
    pub text: String,
}

impl WorkItem {
    /// A benchmark query as a mix entry.
    pub fn bench(q: BenchQuery) -> WorkItem {
        WorkItem {
            label: q.label().to_owned(),
            text: q.text().to_owned(),
        }
    }

    /// An aggregation extension query as a mix entry.
    pub fn ext(q: ExtQuery) -> WorkItem {
        WorkItem {
            label: q.label().to_owned(),
            text: q.text().to_owned(),
        }
    }
}

/// The default mix: all of Q1–Q12 plus the A1–A5 aggregation extension —
/// the full cheap-to-expensive spread of the benchmark.
pub fn default_mix() -> Vec<WorkItem> {
    BenchQuery::ALL
        .iter()
        .map(|&q| WorkItem::bench(q))
        .chain(ExtQuery::ALL.iter().map(|&q| WorkItem::ext(q)))
        .collect()
}

/// When a multi-user run ends.
#[derive(Debug, Clone, Copy)]
pub enum StopCondition {
    /// Wall-clock bound (the CLI's `--duration`). Queries still in flight
    /// at the deadline are cancelled and not recorded.
    Duration(Duration),
    /// Every client performs exactly this many passes over its mix —
    /// deterministic, for tests and apples-to-apples comparisons.
    Rounds(u32),
}

/// Multi-user workload configuration.
#[derive(Debug, Clone)]
pub struct MultiuserConfig {
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Intra-query parallelism per client (`QueryOptions::parallelism`) —
    /// the CLI's `--threads`.
    pub parallelism: usize,
    /// When to stop.
    pub stop: StopCondition,
    /// Per-query timeout (counted as a timeout, not an error).
    pub timeout: Duration,
    /// The query mix every client cycles through (each client starts at
    /// its own rotation offset). Must not be empty.
    pub mix: Vec<WorkItem>,
    /// Rotation seed, so reruns are comparable.
    pub seed: u64,
    /// Compute per-execution result checksums on the in-process
    /// transport: solutions stream through the TSV serializer into an
    /// order-insensitive fold ([`crate::endpoint::ChecksumWriter`])
    /// instead of the zero-decode counting path, so checksum stability
    /// is asserted like count stability, and values are directly
    /// comparable with HTTP TSV bodies. Off by default (counting is the
    /// benchmark fast path); the HTTP transport folds checksums from its
    /// TSV bodies unconditionally — they are free there.
    pub checksums: bool,
    /// The arrival process. [`Arrival::Closed`] (the default) is the
    /// legacy closed loop driven by [`run_multiuser`]; open-loop
    /// processes are driven by [`crate::workload::run_open_loop`], where
    /// a schedule thread stamps intended send times (see
    /// [`crate::workload`]).
    pub arrival: Arrival,
    /// Warmup period measured from the run start: outcomes that start
    /// (closed loop) or were intended (open loop) inside it execute
    /// normally but are excluded from every histogram and from
    /// count/checksum-stability tracking, tallied separately
    /// ([`ClientReport::warmup_excluded`]).
    pub warmup: Duration,
    /// Per-template popularity weights paralleling `mix`, from the mix
    /// DSL or `--zipf` ([`crate::workload::WeightedMix`]). Empty (the
    /// default) means the closed loop keeps its legacy uniform rotation;
    /// non-empty switches slot choice to seeded weighted sampling.
    pub weights: Vec<f64>,
}

impl MultiuserConfig {
    /// `clients` clients over the default mix: 30 s per-query timeout,
    /// per-query parallelism 1 (concurrency comes from the clients).
    pub fn new(clients: usize, stop: StopCondition) -> Self {
        MultiuserConfig {
            clients: clients.max(1),
            parallelism: 1,
            stop,
            timeout: Duration::from_secs(30),
            mix: default_mix(),
            seed: 0,
            checksums: false,
            arrival: Arrival::Closed,
            warmup: Duration::ZERO,
            weights: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// What one client experienced.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Client index (0-based).
    pub client: usize,
    /// Successfully completed queries.
    pub completed: u64,
    /// Executions that hit the per-query timeout.
    pub timeouts: u64,
    /// Executions that errored (prepare or evaluation).
    pub errors: u64,
    /// Latency of completed queries.
    pub latency: LatencyHistogram,
    /// Result cardinality per query label, from the first completed
    /// execution.
    pub counts: BTreeMap<String, u64>,
    /// Order-insensitive result checksum per query label, from the first
    /// completed execution that carried one (see
    /// [`ExecOutcome::Completed`]).
    pub checksums: BTreeMap<String, u64>,
    /// Labels whose result count **or checksum** *changed* between two
    /// executions by this client — always empty over a read-only store;
    /// the concurrency test asserts it.
    pub inconsistent: Vec<String>,
    /// Executions excluded because they started inside the configured
    /// warmup period ([`MultiuserConfig::warmup`]); they appear in no
    /// other tally.
    pub warmup_excluded: u64,
}

/// A completed multi-user run.
#[derive(Debug, Clone)]
pub struct MultiuserReport {
    /// Per-client outcomes, in client order.
    pub clients: Vec<ClientReport>,
    /// Wall-clock of the whole run (spawn to last join).
    pub wall: Duration,
}

impl MultiuserReport {
    /// Total completed queries across clients.
    pub fn total_completed(&self) -> u64 {
        self.clients.iter().map(|c| c.completed).sum()
    }

    /// Aggregate throughput in queries per second.
    pub fn throughput(&self) -> f64 {
        self.total_completed() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// All clients' latencies merged.
    pub fn aggregate_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for c in &self.clients {
            all.merge(&c.latency);
        }
        all
    }
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/// Outcome of one transported query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Completed.
    Completed {
        /// Result row count (ASK: 1/0).
        rows: u64,
        /// Order-insensitive result checksum
        /// ([`crate::endpoint::ResultChecksum`]) when the transport
        /// computed one — the HTTP transport folds it from the TSV body,
        /// the in-process transport when
        /// [`MultiuserConfig::checksums`] is set. `None` means "count
        /// only" (the zero-decode fast path).
        checksum: Option<u64>,
    },
    /// Hit the per-query timeout (engine cancellation, HTTP `408`, or a
    /// socket timeout).
    TimedOut,
    /// Failed for any other reason.
    Failed,
}

/// How a benchmark client reaches the store under test. The in-process
/// transport calls the [`QueryEngine`] directly; the HTTP transport
/// ([`crate::endpoint::HttpTransport`]) posts to a live endpoint over
/// real sockets. Both feed the same histogram/report pipeline.
pub trait WorkTransport: Sync {
    /// Per-client setup: prepare statements / open a connection for the
    /// given mix. Entries unusable at setup are reported via
    /// [`SessionSetup::failed`] and excluded from the rotation.
    fn open(&self, client: usize, mix: &[WorkItem]) -> SessionSetup;
}

/// One client's executable state, produced by [`WorkTransport::open`].
pub struct SessionSetup {
    /// Labels of the executable mix entries, in rotation order.
    pub labels: Vec<String>,
    /// Mix entries that failed setup (each counts as one error).
    pub failed: u64,
    /// The executor for `labels` slots.
    pub session: Box<dyn WorkSession>,
}

/// A client session: executes mix slots until the driver stops.
pub trait WorkSession {
    /// Runs slot `slot` (an index into [`SessionSetup::labels`]), giving
    /// up at `stop_at`.
    fn execute(&mut self, slot: usize, stop_at: Instant) -> ExecOutcome;
}

/// The in-process transport: each session owns a [`QueryEngine`] clone
/// over the shared store and executes via the counting path (no term
/// decoding) — or, with checksums enabled, streams solutions through
/// the TSV serializer into an order-insensitive checksum fold — with
/// the per-query deadline enforced through [`Cancellation`].
pub struct InProcessTransport {
    store: SharedStore,
    parallelism: usize,
    checksums: bool,
}

impl InProcessTransport {
    /// A transport over `store` with the given intra-query parallelism.
    pub fn new(store: SharedStore, parallelism: usize) -> Self {
        InProcessTransport {
            store,
            parallelism: parallelism.max(1),
            checksums: false,
        }
    }

    /// Enables per-execution result checksums (see
    /// [`MultiuserConfig::checksums`]).
    pub fn checksums(mut self, enabled: bool) -> Self {
        self.checksums = enabled;
        self
    }
}

impl WorkTransport for InProcessTransport {
    fn open(&self, _client: usize, mix: &[WorkItem]) -> SessionSetup {
        let engine = QueryEngine::with_options(
            self.store.clone(),
            QueryOptions::new().parallelism(self.parallelism),
        );
        // Prepare the whole mix once — the long-lived-server execution
        // model: plans are reused across every execution of this client.
        let mut labels = Vec::with_capacity(mix.len());
        let mut prepared = Vec::with_capacity(mix.len());
        let mut failed = 0u64;
        for item in mix {
            match engine.prepare(&item.text) {
                Ok(p) => {
                    labels.push(item.label.clone());
                    prepared.push(p);
                }
                Err(_) => failed += 1,
            }
        }
        SessionSetup {
            labels,
            failed,
            session: Box::new(InProcessSession {
                engine,
                prepared,
                checksums: self.checksums,
            }),
        }
    }
}

struct InProcessSession {
    engine: QueryEngine,
    prepared: Vec<sp2b_sparql::Prepared>,
    checksums: bool,
}

impl WorkSession for InProcessSession {
    fn execute(&mut self, slot: usize, stop_at: Instant) -> ExecOutcome {
        let cancel = Cancellation::with_deadline(stop_at);
        let prepared = &self.prepared[slot];
        if self.checksums {
            // Stream rows through the TSV serializer into the checksum
            // fold — byte-identical to what the HTTP endpoint puts on
            // the wire, so in-process and endpoint checksums compare.
            let mut sink = crate::endpoint::ChecksumWriter::new(!prepared.is_ask());
            let mut solutions = self.engine.solutions_with(prepared, &cancel);
            return match sp2b_sparql::results::write_solutions(
                &mut sink,
                sp2b_sparql::results::Format::Tsv,
                &mut solutions,
                prepared.is_ask(),
            ) {
                Ok(rows) => ExecOutcome::Completed {
                    rows,
                    checksum: Some(sink.finish()),
                },
                Err(sp2b_sparql::results::WriteError::Query(SparqlError::Cancelled)) => {
                    ExecOutcome::TimedOut
                }
                Err(_) => ExecOutcome::Failed,
            };
        }
        match self.engine.count_with(prepared, &cancel) {
            Ok(count) => ExecOutcome::Completed {
                rows: count,
                checksum: None,
            },
            Err(SparqlError::Cancelled) => ExecOutcome::TimedOut,
            Err(_) => ExecOutcome::Failed,
        }
    }
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Drives `cfg.clients` concurrent client threads against one shared
/// store and collects their reports. Blocks until every client finished.
pub fn run_multiuser(store: SharedStore, cfg: &MultiuserConfig) -> MultiuserReport {
    run_multiuser_with(
        &InProcessTransport::new(store, cfg.parallelism).checksums(cfg.checksums),
        cfg,
    )
}

/// Like [`run_multiuser`] over an explicit [`WorkTransport`] — this is
/// how `sp2b multiuser --endpoint` drives a live HTTP endpoint through
/// the same measurement pipeline.
pub fn run_multiuser_with(transport: &dyn WorkTransport, cfg: &MultiuserConfig) -> MultiuserReport {
    assert!(!cfg.mix.is_empty(), "the query mix must not be empty");
    assert!(
        cfg.weights.is_empty() || cfg.weights.len() == cfg.mix.len(),
        "weights must parallel the mix"
    );
    let clients = cfg.clients.max(1);
    let started = Instant::now();
    let deadline = match cfg.stop {
        StopCondition::Duration(d) => Some(started + d),
        StopCondition::Rounds(_) => None,
    };
    let reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| s.spawn(move || client_loop(client, transport, cfg, started, deadline)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Vec<_>>()
    });
    MultiuserReport {
        clients: reports,
        wall: started.elapsed(),
    }
}

fn client_loop(
    client: usize,
    transport: &dyn WorkTransport,
    cfg: &MultiuserConfig,
    started: Instant,
    deadline: Option<Instant>,
) -> ClientReport {
    let mut report = ClientReport {
        client,
        completed: 0,
        timeouts: 0,
        errors: 0,
        latency: LatencyHistogram::new(),
        counts: BTreeMap::new(),
        checksums: BTreeMap::new(),
        inconsistent: Vec::new(),
        warmup_excluded: 0,
    };
    let SessionSetup {
        labels,
        failed,
        mut session,
    } = transport.open(client, &cfg.mix);
    report.errors += failed;
    if labels.is_empty() {
        return report;
    }
    let series: Vec<sp2b_obs::Histogram> =
        labels.iter().map(|l| template_latency_series(l)).collect();
    let warmup_until = (cfg.warmup > Duration::ZERO).then(|| started + cfg.warmup);
    // Each client walks the mix at its own rotation offset, so at any
    // instant the store serves a genuine mix of query shapes — unless a
    // weighted mix is configured, in which case slots are drawn by a
    // per-client seeded sampler instead.
    let offset = (cfg.seed as usize).wrapping_add(client) % labels.len();
    let mut sampler = weighted_sampler(cfg, &labels, client);
    let total: Option<u64> = match cfg.stop {
        StopCondition::Rounds(r) => Some(r as u64 * labels.len() as u64),
        StopCondition::Duration(_) => None,
    };
    let mut executed = 0u64;
    loop {
        if total.is_some_and(|t| executed >= t) {
            break;
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            break;
        }
        let slot = match &mut sampler {
            Some(sampler) => sampler.sample(),
            None => (offset + executed as usize) % labels.len(),
        };
        // The execution deadline is the earlier of the per-query
        // timeout and the wall deadline, so a run overshoots its
        // configured duration by at most one cancellation latency.
        let mut stop_at = now + cfg.timeout;
        if let Some(d) = deadline {
            stop_at = stop_at.min(d);
        }
        let t0 = Instant::now();
        let in_warmup = warmup_until.is_some_and(|w| t0 < w);
        match session.execute(slot, stop_at) {
            _ if in_warmup => {
                // Warmup executions prime caches and plans but pollute
                // neither histograms nor stability tracking.
                report.warmup_excluded += 1;
            }
            ExecOutcome::Completed { rows, checksum } => {
                let latency = t0.elapsed();
                report.latency.record(latency);
                series[slot].record(latency);
                report.completed += 1;
                let label = &labels[slot];
                // Record each unstable label once, however many times it
                // keeps shifting — by count, and by checksum when the
                // transport computes one.
                let count_unstable = stability(&mut report.counts, label, rows);
                let checksum_unstable =
                    checksum.is_some_and(|cs| stability(&mut report.checksums, label, cs));
                if (count_unstable || checksum_unstable) && !report.inconsistent.contains(label) {
                    report.inconsistent.push(label.clone());
                }
            }
            ExecOutcome::TimedOut => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    break; // wall deadline, not a per-query timeout
                }
                report.timeouts += 1;
            }
            ExecOutcome::Failed => report.errors += 1,
        }
        executed += 1;
    }
    report
}

/// A per-client seeded sampler over the *prepared* labels when a
/// weighted mix is configured; `None` keeps the legacy rotation.
fn weighted_sampler(cfg: &MultiuserConfig, labels: &[String], client: usize) -> Option<MixSampler> {
    if cfg.weights.is_empty() {
        return None;
    }
    let slot_weights: Vec<f64> = labels
        .iter()
        .map(|label| {
            cfg.mix
                .iter()
                .position(|item| item.label == *label)
                .map_or(1.0, |i| cfg.weights[i])
        })
        .collect();
    Some(MixSampler::new(
        &slot_weights,
        cfg.seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    ))
}

/// Records `value` for `label` on first sight; afterwards reports
/// whether it drifted from the recorded one.
pub(crate) fn stability(seen: &mut BTreeMap<String, u64>, label: &str, value: u64) -> bool {
    match seen.get(label) {
        Some(&previous) => previous != value,
        None => {
            seen.insert(label.to_owned(), value);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp2b_datagen::{generate_graph, Config};
    use sp2b_store::{NativeStore, TripleStore};

    #[test]
    fn rounds_mode_is_deterministic_and_consistent() {
        let (graph, _) = generate_graph(Config::triples(2_000));
        let store = NativeStore::from_graph(&graph).into_shared();
        let mut cfg = MultiuserConfig::new(3, StopCondition::Rounds(2));
        cfg.mix = vec![
            WorkItem::bench(BenchQuery::Q1),
            WorkItem::bench(BenchQuery::Q3a),
            WorkItem::ext(ExtQuery::A1),
        ];
        let report = run_multiuser(store, &cfg);
        assert_eq!(report.clients.len(), 3);
        for c in &report.clients {
            assert_eq!(c.completed, 6, "2 rounds × 3 queries");
            assert_eq!(c.errors, 0);
            assert_eq!(c.timeouts, 0);
            assert!(c.inconsistent.is_empty());
            assert_eq!(c.counts.len(), 3);
        }
        // All clients observe identical result counts over the shared store.
        let first = &report.clients[0].counts;
        for c in &report.clients[1..] {
            assert_eq!(&c.counts, first);
        }
        assert_eq!(report.total_completed(), 18);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn checksums_are_stable_and_identical_across_clients() {
        let (graph, _) = generate_graph(Config::triples(2_000));
        let store = NativeStore::from_graph(&graph).into_shared();
        let mut cfg = MultiuserConfig::new(3, StopCondition::Rounds(2));
        cfg.checksums = true;
        cfg.mix = vec![
            WorkItem::bench(BenchQuery::Q2),
            WorkItem::bench(BenchQuery::Q5a),
            WorkItem::bench(BenchQuery::Q12c), // ASK: boolean-line checksum
            WorkItem::ext(ExtQuery::A1),
        ];
        let report = run_multiuser(store.clone(), &cfg);
        for c in &report.clients {
            assert!(c.inconsistent.is_empty(), "{:?}", c.inconsistent);
            assert_eq!(c.checksums.len(), 4, "every label carries a checksum");
            assert_eq!(c.completed, 8, "2 rounds × 4 queries");
        }
        // All clients fold identical checksums over the shared store.
        let first = &report.clients[0].checksums;
        for c in &report.clients[1..] {
            assert_eq!(&c.checksums, first);
        }
        // The checksum path reports the same counts as the counting path.
        cfg.checksums = false;
        let counted = run_multiuser(store, &cfg);
        assert_eq!(counted.clients[0].counts, report.clients[0].counts);
        assert!(
            counted.clients[0].checksums.is_empty(),
            "counting path folds nothing"
        );
    }

    #[test]
    fn duration_mode_stops() {
        let (graph, _) = generate_graph(Config::triples(1_000));
        let store = NativeStore::from_graph(&graph).into_shared();
        let mut cfg = MultiuserConfig::new(2, StopCondition::Duration(Duration::from_millis(200)));
        cfg.mix = vec![WorkItem::bench(BenchQuery::Q1)];
        let report = run_multiuser(store, &cfg);
        assert!(report.total_completed() > 0, "something must complete");
        // The run must not overshoot the wall by more than a cancellation.
        assert!(report.wall < Duration::from_secs(30), "{:?}", report.wall);
    }
}
