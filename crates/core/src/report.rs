//! Formatters that print the paper's tables and figure data series from a
//! [`BenchmarkReport`], plus the multi-user workload section from a
//! [`MixedWorkloadReport`] — closed-loop per-client tables, the
//! open-loop workload table ([`open_loop_table`]) with its per-template
//! percentile rows and intended-vs-actual rate line, and the
//! machine-readable JSON dump ([`open_loop_json`]) behind
//! `--report json:FILE`.

use crate::metrics::{arithmetic_mean, geometric_mean};
use crate::multiuser::MultiuserReport;
use crate::runner::{BenchmarkReport, MixedWorkloadReport};
use crate::workload::OpenLoopReport;

/// Human-readable scale label (10000 → "10k", 1000000 → "1M").
pub fn scale_label(n: u64) -> String {
    if n >= 1_000_000 && n.is_multiple_of(1_000_000) {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 && n.is_multiple_of(1_000) {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// Table IV: success-rate matrix. One row per scale per engine, one status
/// letter per query (paper order).
pub fn success_table(report: &BenchmarkReport) -> String {
    let mut out = String::new();
    out.push_str("TABLE IV — SUCCESS RATES (+ success, T timeout, M memory, E error)\n\n");
    let queries = &report.queries;
    out.push_str(&format!("{:<9} {:<12} ", "scale", "engine"));
    for q in queries {
        out.push_str(&format!("{:<5}", q.label()));
    }
    out.push('\n');
    for &scale in &report.scales {
        for &engine in &report.engines {
            out.push_str(&format!(
                "{:<9} {:<12} ",
                scale_label(scale),
                engine.label()
            ));
            for &q in queries {
                let letter = report
                    .cell(scale, engine, q)
                    .map_or('?', |r| r.status.letter());
                out.push_str(&format!("{letter:<5}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Table V: number of query results per scale (SELECT row counts; ASK
/// queries report 1/0 for yes/no).
pub fn result_sizes_table(report: &BenchmarkReport) -> String {
    let mut out = String::new();
    out.push_str("TABLE V — NUMBER OF QUERY RESULTS\n\n");
    out.push_str(&format!("{:<9}", "scale"));
    for q in &report.queries {
        out.push_str(&format!("{:>12}", q.label()));
    }
    out.push('\n');
    for &scale in &report.scales {
        out.push_str(&format!("{:<9}", scale_label(scale)));
        for &q in &report.queries {
            match report.result_count(scale, q) {
                Some(c) => out.push_str(&format!("{c:>12}")),
                None => out.push_str(&format!("{:>12}", "n/a")),
            }
        }
        out.push('\n');
    }
    out
}

/// Tables VI & VII: arithmetic/geometric mean of execution time and mean
/// memory consumption, split by engine class exactly like the paper.
pub fn means_table(report: &BenchmarkReport) -> String {
    let mut out = String::new();
    out.push_str(
        "TABLES VI/VII — MEANS OF EXECUTION TIME (Ta/Tg, failures = 3600 s) AND MEMORY (Ma)\n\n",
    );
    out.push_str(&format!(
        "{:<9} {:<12} {:>12} {:>12} {:>12}\n",
        "scale", "engine", "Ta[s]", "Tg[s]", "Ma[MB]"
    ));
    for &scale in &report.scales {
        for &engine in &report.engines {
            let times: Vec<f64> = report
                .records
                .iter()
                .filter(|r| r.scale == scale && r.engine == engine)
                .map(|r| r.penalized_seconds())
                .collect();
            if times.is_empty() {
                continue;
            }
            let mem: Vec<f64> = report
                .records
                .iter()
                .filter(|r| r.scale == scale && r.engine == engine)
                .filter_map(|r| r.measurement.rmem_kib)
                .map(|k| k as f64 / 1024.0)
                .collect();
            let ma = if mem.is_empty() {
                f64::NAN
            } else {
                arithmetic_mean(&mem)
            };
            out.push_str(&format!(
                "{:<9} {:<12} {:>12.3} {:>12.3} {:>12.1}\n",
                scale_label(scale),
                engine.label(),
                arithmetic_mean(&times),
                geometric_mean(&times),
                ma,
            ));
        }
    }
    out
}

/// Loading times (Figure 5, bottom-left; LOADING TIME metric).
pub fn loading_table(report: &BenchmarkReport) -> String {
    let mut out = String::new();
    out.push_str("LOADING TIMES (dictionary encoding + index build)\n\n");
    out.push_str(&format!(
        "{:<9} {:<12} {:>12} {:>12} {:>12}\n",
        "scale", "engine", "tme[s]", "usr[s]", "sys[s]"
    ));
    for l in &report.loads {
        out.push_str(&format!(
            "{:<9} {:<12} {:>12.4} {:>12.4} {:>12.4}\n",
            scale_label(l.scale),
            l.engine.label(),
            l.measurement.tme.as_secs_f64(),
            l.measurement.usr.map_or(f64::NAN, |d| d.as_secs_f64()),
            l.measurement.sys.map_or(f64::NAN, |d| d.as_secs_f64()),
        ));
    }
    out
}

/// Figures 5–8: per-query data series — for each query and engine, one
/// line per scale with tme and usr+sys (or "Failure", as the paper plots).
pub fn figure_series(report: &BenchmarkReport) -> String {
    let mut out = String::new();
    out.push_str(
        "FIGURES 5-8 — PER-QUERY EVALUATION DATA (time in seconds, log-scale in the paper)\n",
    );
    for &q in &report.queries {
        out.push_str(&format!("\n{} ", q.label()));
        out.push_str(&"-".repeat(70 - q.label().len()));
        out.push('\n');
        out.push_str(&format!("{:<12}", "engine"));
        for &scale in &report.scales {
            out.push_str(&format!("{:>16}", scale_label(scale)));
        }
        out.push('\n');
        for &engine in &report.engines {
            // tme row.
            out.push_str(&format!("{:<12}", engine.label()));
            for &scale in &report.scales {
                let cell = report.cell(scale, engine, q);
                match cell {
                    Some(r) if r.status == crate::runner::Status::Success => {
                        out.push_str(&format!("{:>16.4}", r.measurement.tme.as_secs_f64()));
                    }
                    Some(r) => out.push_str(&format!("{:>16}", r.status.letter())),
                    None => out.push_str(&format!("{:>16}", "-")),
                }
            }
            out.push('\n');
            // usr+sys row (indented), when available.
            let has_cpu = report.scales.iter().any(|&s| {
                report
                    .cell(s, engine, q)
                    .and_then(|r| r.measurement.usr)
                    .is_some()
            });
            if has_cpu {
                out.push_str(&format!("{:<12}", "  usr+sys"));
                for &scale in &report.scales {
                    let v = report.cell(scale, engine, q).and_then(|r| {
                        Some((r.measurement.usr? + r.measurement.sys?).as_secs_f64())
                    });
                    match v {
                        Some(v) => out.push_str(&format!("{v:>16.4}")),
                        None => out.push_str(&format!("{:>16}", "-")),
                    }
                }
                out.push('\n');
            }
        }
    }
    out
}

/// The multi-user workload table: one row per client with completed
/// query count, per-client throughput, p50/p95/p99/max latency and
/// timeout/error tallies, then the aggregate row (merged histogram,
/// whole-run queries/sec).
pub fn multiuser_table(report: &MultiuserReport) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut out = format!(
        "MULTI-USER WORKLOAD — {} client(s), wall {:.2} s\n\n",
        report.clients.len(),
        report.wall.as_secs_f64()
    );
    out.push_str(&format!(
        "{:<8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7}\n",
        "client",
        "queries",
        "q/s",
        "p50[ms]",
        "p95[ms]",
        "p99[ms]",
        "max[ms]",
        "timeouts",
        "errors"
    ));
    let wall = report.wall.as_secs_f64().max(1e-9);
    for c in &report.clients {
        out.push_str(&format!(
            "{:<8} {:>9} {:>9.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9} {:>7}\n",
            c.client,
            c.completed,
            c.completed as f64 / wall,
            ms(c.latency.quantile(0.50)),
            ms(c.latency.quantile(0.95)),
            ms(c.latency.quantile(0.99)),
            ms(c.latency.max()),
            c.timeouts,
            c.errors,
        ));
    }
    let all = report.aggregate_latency();
    out.push_str(&format!(
        "{:<8} {:>9} {:>9.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9} {:>7}\n",
        "all",
        report.total_completed(),
        report.throughput(),
        ms(all.quantile(0.50)),
        ms(all.quantile(0.95)),
        ms(all.quantile(0.99)),
        ms(all.max()),
        report.clients.iter().map(|c| c.timeouts).sum::<u64>(),
        report.clients.iter().map(|c| c.errors).sum::<u64>(),
    ));
    let warmed: u64 = report.clients.iter().map(|c| c.warmup_excluded).sum();
    if warmed > 0 {
        out.push_str(&format!(
            "warmup: {warmed} queries executed before the cutoff and excluded above\n"
        ));
    }
    // A read-only store must answer every client identically every time:
    // any label whose count or checksum drifted is a correctness bug,
    // not noise — surface it loudly.
    let mut unstable: Vec<&str> = report
        .clients
        .iter()
        .flat_map(|c| c.inconsistent.iter().map(String::as_str))
        .collect();
    unstable.sort_unstable();
    unstable.dedup();
    if !unstable.is_empty() {
        out.push_str(&format!(
            "WARNING: unstable results (count/checksum drift) for: {}\n",
            unstable.join(", ")
        ));
    }
    out
}

/// The endpoint (server) workload section: the multi-user table for a
/// run driven over HTTP against a live SPARQL endpoint — the network
/// counterpart of [`mixed_workload_report`]. Latencies here include
/// connection handling, request framing and result-set transfer, not
/// just evaluation.
pub fn endpoint_workload_report(endpoint_url: &str, report: &MultiuserReport) -> String {
    let mut out = format!(
        "SPARQL ENDPOINT WORKLOAD — {endpoint_url} (latency includes the network path)\n\n"
    );
    out.push_str(&multiuser_table(report));
    out
}

/// The open-loop workload table: the run header (arrival process,
/// workers, wall), the intended-vs-actual rate line, the
/// latency/queue-delay/service decomposition, one percentile row per
/// template, and the windowed throughput/p99 time series.
pub fn open_loop_table(report: &OpenLoopReport) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut out = format!(
        "OPEN-LOOP WORKLOAD — arrival {}, {} worker(s), seed {}, wall {:.2} s\n",
        report.arrival,
        report.clients,
        report.seed,
        report.wall.as_secs_f64()
    );
    let intended = report.intended_rate();
    let drift = if intended > 0.0 {
        (report.completed_rate() - intended) / intended * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "rate: intended {:.1} q/s ({} issued over {:.2} s), \
         completed {:.1} q/s ({} done, {} timeouts, {} errors) — drift {:+.1}%\n",
        intended,
        report.issued,
        report.schedule_span.as_secs_f64(),
        report.completed_rate(),
        report.completed,
        report.timeouts,
        report.errors,
        drift,
    ));
    if report.warmup > std::time::Duration::ZERO {
        out.push_str(&format!(
            "warmup: {:.1} s ({} queries excluded)\n",
            report.warmup.as_secs_f64(),
            report.warmup_excluded
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}\n",
        "phase", "p50[ms]", "p95[ms]", "p99[ms]", "max[ms]"
    ));
    for (name, h) in [
        ("latency", &report.latency),
        ("queue-delay", &report.queue_delay),
        ("service", &report.service),
    ] {
        out.push_str(&format!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
            name,
            ms(h.quantile(0.50)),
            ms(h.quantile(0.95)),
            ms(h.quantile(0.99)),
            ms(h.max()),
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<8} {:>8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7}\n",
        "template",
        "weight%",
        "queries",
        "q/s",
        "p50[ms]",
        "p95[ms]",
        "p99[ms]",
        "max[ms]",
        "timeouts",
        "errors"
    ));
    let wall = report.wall.as_secs_f64().max(1e-9);
    let total_weight: f64 = report.templates.iter().map(|t| t.weight).sum();
    for t in &report.templates {
        out.push_str(&format!(
            "{:<8} {:>8.1} {:>9} {:>9.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9} {:>7}\n",
            t.label,
            t.weight / total_weight.max(1e-9) * 100.0,
            t.completed,
            t.completed as f64 / wall,
            ms(t.latency.quantile(0.50)),
            ms(t.latency.quantile(0.95)),
            ms(t.latency.quantile(0.99)),
            ms(t.latency.max()),
            t.timeouts,
            t.errors,
        ));
    }
    out.push_str(&format!(
        "{:<8} {:>8} {:>9} {:>9.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9} {:>7}\n",
        "all",
        "",
        report.completed,
        report.completed_rate(),
        ms(report.latency.quantile(0.50)),
        ms(report.latency.quantile(0.95)),
        ms(report.latency.quantile(0.99)),
        ms(report.latency.max()),
        report.timeouts,
        report.errors,
    ));
    if report.windows.len() > 1 {
        let width = report
            .windows
            .get(1)
            .map(|w| w.start.as_secs_f64())
            .unwrap_or(1.0)
            .max(1e-9);
        out.push_str(&format!(
            "\nthroughput/p99 by {:.0} s window:\n{:<7} {:>9} {:>9} {:>10} {:>10} {:>10}\n",
            width, "t[s]", "queries", "q/s", "p50[ms]", "p99[ms]", "max[ms]"
        ));
        for w in &report.windows {
            out.push_str(&format!(
                "{:<7.0} {:>9} {:>9.1} {:>10.3} {:>10.3} {:>10.3}\n",
                w.start.as_secs_f64(),
                w.completed,
                w.completed as f64 / width,
                ms(w.p50),
                ms(w.p99),
                ms(w.max),
            ));
        }
    }
    if !report.inconsistent.is_empty() {
        out.push_str(&format!(
            "WARNING: unstable results (count/checksum drift) for: {}\n",
            report.inconsistent.join(", ")
        ));
    }
    out
}

/// The endpoint counterpart of [`open_loop_table`], with the endpoint
/// URL in the header.
pub fn endpoint_open_workload_report(endpoint_url: &str, report: &OpenLoopReport) -> String {
    let mut out = format!(
        "SPARQL ENDPOINT WORKLOAD — {endpoint_url} (latency includes the network path)\n\n"
    );
    out.push_str(&open_loop_table(report));
    out
}

/// The machine-readable open-loop report behind `--report json:FILE` —
/// every histogram rendered through [`sp2b_obs::histogram_json`], the
/// same shape the server's `/stats` endpoint uses.
pub fn open_loop_json(report: &OpenLoopReport) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"schema\":\"sp2b-workload/1\",\"arrival\":\"{}\",\"clients\":{},\"seed\":{},\
         \"wall_seconds\":{},\"warmup_seconds\":{},\"warmup_excluded\":{},\
         \"issued\":{},\"completed\":{},\"timeouts\":{},\"errors\":{},\
         \"intended_rate\":{},\"completed_rate\":{}",
        report.arrival,
        report.clients,
        report.seed,
        report.wall.as_secs_f64(),
        report.warmup.as_secs_f64(),
        report.warmup_excluded,
        report.issued,
        report.completed,
        report.timeouts,
        report.errors,
        report.intended_rate(),
        report.completed_rate(),
    );
    let _ = write!(
        out,
        ",\"latency\":{},\"queue_delay\":{},\"service\":{}",
        sp2b_obs::histogram_json(&report.latency),
        sp2b_obs::histogram_json(&report.queue_delay),
        sp2b_obs::histogram_json(&report.service),
    );
    out.push_str(",\"templates\":[");
    for (i, t) in report.templates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"template\":\"{}\",\"weight\":{},\"completed\":{},\"timeouts\":{},\
             \"errors\":{},\"latency\":{}}}",
            t.label,
            t.weight,
            t.completed,
            t.timeouts,
            t.errors,
            sp2b_obs::histogram_json(&t.latency),
        );
    }
    out.push_str("],\"windows\":[");
    for (i, w) in report.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"start_seconds\":{},\"completed\":{},\"p50_seconds\":{},\
             \"p99_seconds\":{},\"max_seconds\":{}}}",
            w.start.as_secs_f64(),
            w.completed,
            w.p50.as_secs_f64(),
            w.p99.as_secs_f64(),
            w.max.as_secs_f64(),
        );
    }
    out.push_str("]}");
    out
}

/// The full mixed-workload report: run header (scale, engine, load
/// time, sharding facts when sharded) plus the [`multiuser_table`] —
/// or, for an open-loop run, the [`open_loop_table`].
pub fn mixed_workload_report(report: &MixedWorkloadReport) -> String {
    let mut out = format!(
        "MIXED WORKLOAD — {} triples on {} (loaded in {})\n",
        scale_label(report.scale),
        report.engine.label(),
        report.load.summary()
    );
    if let Some(info) = &report.shards {
        out.push_str(&format!("{}\n", info.summary()));
    }
    out.push('\n');
    match &report.open {
        Some(open) => out.push_str(&open_loop_table(open)),
        None => out.push_str(&multiuser_table(&report.multiuser)),
    }
    out
}

/// The full report: all tables and series.
pub fn full_report(report: &BenchmarkReport) -> String {
    let mut out = String::new();
    out.push_str(&success_table(report));
    out.push('\n');
    out.push_str(&result_sizes_table(report));
    out.push('\n');
    out.push_str(&means_table(report));
    out.push('\n');
    out.push_str(&loading_table(report));
    out.push('\n');
    out.push_str(&figure_series(report));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineKind;
    use crate::metrics::Measurement;
    use crate::queries::BenchQuery;
    use crate::runner::{LoadRecord, QueryRecord, Status};
    use std::time::Duration;

    fn fake_report() -> BenchmarkReport {
        let mut report = BenchmarkReport {
            scales: vec![10_000, 50_000],
            engines: vec![EngineKind::MemNaive, EngineKind::NativeOpt],
            queries: vec![BenchQuery::Q1, BenchQuery::Q4],
            ..Default::default()
        };
        for &scale in &[10_000u64, 50_000] {
            for engine in [EngineKind::MemNaive, EngineKind::NativeOpt] {
                report.loads.push(LoadRecord {
                    scale,
                    engine,
                    measurement: Measurement {
                        tme: Duration::from_millis(5),
                        ..Default::default()
                    },
                });
                for (query, status, count) in [
                    (BenchQuery::Q1, Status::Success, Some(1)),
                    (
                        BenchQuery::Q4,
                        if engine == EngineKind::MemNaive {
                            Status::Timeout
                        } else {
                            Status::Success
                        },
                        if engine == EngineKind::MemNaive {
                            None
                        } else {
                            Some(23_226)
                        },
                    ),
                ] {
                    report.records.push(QueryRecord {
                        scale,
                        engine,
                        query,
                        status,
                        measurement: Measurement {
                            tme: Duration::from_millis(12),
                            rmem_kib: Some(2048),
                            ..Default::default()
                        },
                        count,
                    });
                }
            }
        }
        report
    }

    #[test]
    fn scale_labels() {
        assert_eq!(scale_label(10_000), "10k");
        assert_eq!(scale_label(1_000_000), "1M");
        assert_eq!(scale_label(1_234), "1234");
    }

    #[test]
    fn success_table_shows_letters() {
        let s = success_table(&fake_report());
        assert!(s.contains("mem-naive"), "{s}");
        assert!(s.contains('T'), "timeout letter missing:\n{s}");
        assert!(s.contains('+'));
    }

    #[test]
    fn result_sizes_prefer_successful_engines() {
        let s = result_sizes_table(&fake_report());
        assert!(s.contains("23226"), "{s}");
    }

    #[test]
    fn means_apply_penalty() {
        let s = means_table(&fake_report());
        // mem-naive has one timeout of 3600 s and one 12 ms run →
        // Ta ≈ 1800 s.
        assert!(s.contains("1800."), "{s}");
    }

    #[test]
    fn figure_series_include_failures() {
        let s = figure_series(&fake_report());
        assert!(s.contains("Q4"));
        assert!(s.contains("T"), "{s}");
    }

    #[test]
    fn full_report_concatenates_everything() {
        let s = full_report(&fake_report());
        assert!(s.contains("TABLE IV"));
        assert!(s.contains("TABLE V"));
        assert!(s.contains("TABLES VI/VII"));
        assert!(s.contains("LOADING"));
        assert!(s.contains("FIGURES 5-8"));
    }

    #[test]
    fn endpoint_report_carries_the_url_and_table() {
        use crate::multiuser::{ClientReport, LatencyHistogram, MultiuserReport};
        let mut latency = LatencyHistogram::new();
        latency.record(Duration::from_millis(3));
        let report = MultiuserReport {
            clients: vec![ClientReport {
                client: 0,
                completed: 1,
                timeouts: 0,
                errors: 0,
                latency,
                counts: Default::default(),
                checksums: Default::default(),
                inconsistent: Vec::new(),
                warmup_excluded: 0,
            }],
            wall: Duration::from_secs(1),
        };
        let s = endpoint_workload_report("http://127.0.0.1:8088/sparql", &report);
        assert!(s.contains("SPARQL ENDPOINT WORKLOAD"), "{s}");
        assert!(s.contains("http://127.0.0.1:8088/sparql"), "{s}");
        assert!(s.contains("p99[ms]"), "{s}");
    }

    #[test]
    fn multiuser_table_has_per_client_and_aggregate_rows() {
        use crate::multiuser::{ClientReport, LatencyHistogram, MultiuserReport};
        let client = |i: usize, queries: u64| {
            let mut latency = LatencyHistogram::new();
            for q in 0..queries {
                latency.record(Duration::from_millis(1 + q));
            }
            ClientReport {
                client: i,
                completed: queries,
                timeouts: 0,
                errors: 0,
                latency,
                counts: Default::default(),
                checksums: Default::default(),
                inconsistent: Vec::new(),
                warmup_excluded: 0,
            }
        };
        let report = MixedWorkloadReport {
            scale: 10_000,
            engine: EngineKind::NativeOpt,
            load: Measurement {
                tme: Duration::from_millis(7),
                ..Default::default()
            },
            shards: Some(crate::engines::ShardInfo {
                shard_by: sp2b_store::ShardBy::Subject,
                backend: "native",
                lens: vec![5_100, 4_900],
                build_times: vec![Duration::from_millis(3), Duration::from_millis(4)],
            }),
            multiuser: MultiuserReport {
                clients: vec![client(0, 10), client(1, 20)],
                wall: Duration::from_secs(2),
            },
            open: None,
        };
        let s = mixed_workload_report(&report);
        assert!(s.contains("MIXED WORKLOAD"), "{s}");
        assert!(s.contains("10k"), "{s}");
        assert!(s.contains("2 shard(s) by subject"), "{s}");
        assert!(s.contains("5100/4900"), "{s}");
        assert!(s.contains("p99[ms]"), "{s}");
        assert!(
            s.lines().filter(|l| l.starts_with("all")).count() == 1,
            "{s}"
        );
        assert!(s.contains("15.0"), "aggregate throughput 30/2s:\n{s}");
    }

    #[test]
    fn open_loop_report_renders_rate_line_template_rows_and_json() {
        use crate::multiuser::LatencyHistogram;
        use crate::workload::{Arrival, OpenLoopReport, TemplateReport};
        use sp2b_obs::WindowSnapshot;

        let hist = |millis: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &m in millis {
                h.record(Duration::from_millis(m));
            }
            h
        };
        let report = OpenLoopReport {
            arrival: Arrival::Poisson { rate: 200.0 },
            clients: 2,
            seed: 42,
            warmup: Duration::from_secs(1),
            wall: Duration::from_secs(10),
            issued: 2_000,
            schedule_span: Duration::from_secs(10),
            warmup_excluded: 180,
            completed: 1_815,
            timeouts: 3,
            errors: 2,
            latency: hist(&[2, 5, 9]),
            queue_delay: hist(&[1, 1, 2]),
            service: hist(&[1, 4, 7]),
            templates: vec![
                TemplateReport {
                    label: "Q1".into(),
                    weight: 90.0,
                    completed: 1_640,
                    timeouts: 2,
                    errors: 1,
                    latency: hist(&[2, 5]),
                },
                TemplateReport {
                    label: "Q8".into(),
                    weight: 10.0,
                    completed: 175,
                    timeouts: 1,
                    errors: 1,
                    latency: hist(&[9]),
                },
            ],
            windows: vec![
                WindowSnapshot {
                    start: Duration::ZERO,
                    completed: 900,
                    p50: Duration::from_millis(3),
                    p99: Duration::from_millis(8),
                    max: Duration::from_millis(9),
                },
                WindowSnapshot {
                    start: Duration::from_secs(1),
                    completed: 915,
                    p50: Duration::from_millis(3),
                    p99: Duration::from_millis(9),
                    max: Duration::from_millis(9),
                },
            ],
            counts: Default::default(),
            inconsistent: Vec::new(),
        };

        let s = open_loop_table(&report);
        assert!(
            s.contains("OPEN-LOOP WORKLOAD — arrival poisson:200/s"),
            "{s}"
        );
        assert!(s.contains("rate: intended 200.0 q/s"), "{s}");
        assert!(s.contains("drift "), "{s}");
        assert!(s.contains("warmup: 1.0 s (180 queries excluded)"), "{s}");
        assert!(s.contains("queue-delay"), "{s}");
        assert!(s.lines().any(|l| l.starts_with("Q1 ")), "{s}");
        assert!(s.lines().any(|l| l.starts_with("Q8 ")), "{s}");
        assert!(
            s.lines().filter(|l| l.starts_with("all")).count() == 1,
            "{s}"
        );
        assert!(s.contains("throughput/p99 by 1 s window"), "{s}");

        let url = endpoint_open_workload_report("http://127.0.0.1:8088/sparql", &report);
        assert!(url.contains("SPARQL ENDPOINT WORKLOAD"), "{url}");
        assert!(url.contains("OPEN-LOOP WORKLOAD"), "{url}");

        let json = open_loop_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"schema\":\"sp2b-workload/1\""), "{json}");
        assert!(json.contains("\"arrival\":\"poisson:200/s\""), "{json}");
        assert!(json.contains("\"template\":\"Q1\""), "{json}");
        assert!(json.contains("\"intended_rate\":200"), "{json}");
        assert!(json.contains("\"queue_delay\":{\"count\":3"), "{json}");
        assert!(
            json.contains("\"windows\":[{\"start_seconds\":0,"),
            "{json}"
        );
    }
}
